// Interprocedural layer: a repo-wide call graph over the FileModels the
// structural parser produces, with per-function summaries in the RacerD
// compositional style.  Everything here is conservative in the same way the
// flow rules are: an unresolved call contributes silence, never a finding.
//
//   - Functions merge across declarations, definitions and translation
//     units into one FuncNode per (class, simple-name); overload sets
//     collapse into that node conservatively (any overload's property
//     taints the set).
//   - Receiver/qualifier resolution mirrors the intra-file rules, plus a
//     class hierarchy walk: a call through a base-typed receiver resolves
//     to the named method on the static class, its transitive bases, and
//     every transitive derived class that defines it (all overriders).
//     Explicitly qualified calls (`Base::f()`) stay static, like C++.
//   - Summaries: transitive mutex-acquire sets (lock-order), blocking
//     reachability with the shortest witness chain (blocking-in-loop),
//     inferred loop-affinity (thread-affinity), and per-parameter
//     non-owning escape bits (nonowning-escape).
//
// Documented unsoundness (DESIGN.md §16): calls through function pointers /
// std::function values, macro-generated code, constructor member-init
// lists, statics at namespace scope, and templates are not modeled.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow.hpp"

namespace cs::lint {

/// One named function/method, merged across declarations/definitions/TUs.
struct FuncNode {
  std::string class_name;  ///< "" for free functions
  std::string simple;
  bool declared_affine = false;  ///< `cs: affinity(loop)` on decl or def
  bool inferred_affine = false;  ///< every known call site is loop-affine
  bool must_use = false;
  bool is_template = false;
  std::vector<const FlowContext*> bodies;  ///< definitions only
  std::set<std::string> holds;     ///< `cslint: holds(...)` contract union
  std::set<std::string> acquires;  ///< transitive mutex acquisitions
  /// Parameter names in order, from the first defined body ("" unnamed).
  std::vector<std::string> param_order;
  /// Per parameter: non-owning-typed AND stored beyond the call (into a
  /// member/static/container or a deferred lambda), directly or through
  /// callees.  Returned-only parameters do not propagate (the caller still
  /// owns the referent when the call returns).
  std::vector<char> param_escapes;
  // Blocking reachability: shortest witness from this function's first hop
  // down to a blocking callee ("Shard::finish", "solve").  Empty = none.
  std::vector<std::string> blocking_chain;
  std::string blocking_name;  ///< the blocking callee reached ("" = none)

  bool affine() const { return declared_affine || inferred_affine; }
  std::string display() const;
  std::string key() const { return class_name + "::" + simple; }
};

struct Resolution {
  std::vector<const FuncNode*> candidates;
  bool exact = false;
};

/// One reason a non-owning parameter escapes its function.
struct EscapeSink {
  std::string param;
  std::size_t param_index = 0;
  std::size_t line = 0;
  std::string detail;      ///< human fragment ("stored into member 'fn_'")
  bool propagates = false; ///< store-style sink: taints callers positionally
};

struct CallGraphStats {
  std::size_t functions = 0;
  std::size_t defined_contexts = 0;
  std::size_t call_sites = 0;        ///< in defined non-template contexts
  std::size_t template_sites = 0;    ///< skipped: template context
  std::size_t external_sites = 0;    ///< std::/::-qualified, std-typed
                                     ///< receiver, or no in-repo name
  std::size_t exact_sites = 0;
  std::size_t fallback_sites = 0;    ///< name-only fallback, candidates
  std::size_t unresolved_sites = 0;  ///< in-repo name, no candidates
  std::size_t inferred_affine = 0;
  std::size_t escaping_params = 0;
  /// Resolution rate over in-repo, non-template call sites.
  double resolution_rate() const {
    const std::size_t in_repo = exact_sites + fallback_sites +
                                unresolved_sites;
    return in_repo == 0
               ? 1.0
               : static_cast<double>(exact_sites + fallback_sites) /
                     static_cast<double>(in_repo);
  }
};

/// Whole-repo call graph + summaries.  Holds pointers into the FileModel
/// vector passed to build(); the caller keeps it alive.
class CallGraph {
 public:
  void build(const std::vector<FileModel>& files);

  /// Node a context belongs to (nullptr for lambdas / unknown).
  const FuncNode* node_of(const FlowContext& ctx) const;
  Resolution resolve(const FlowContext& ctx, const FlowCall& call) const;

  /// Loop-affinity with inference: declared, merged across decl/def, or
  /// inferred from call sites (lambdas use their own flag only).
  bool effective_affine(const FlowContext& ctx) const;
  /// Declared-only flavor: annotation on decl/def (or the lambda intro).
  bool declared_affine(const FlowContext& ctx) const;

  /// Direct (per-body) non-owning parameter escapes of one context, with
  /// human-readable sink descriptions.  `fm` must be the owning file (the
  /// lambda children of `ctx` live there).
  std::vector<EscapeSink> direct_escapes(const FlowContext& ctx,
                                         const FileModel& fm) const;
  /// Non-owning type test over a declaration's type tokens.
  static bool is_nonowning_type(const std::vector<std::string>& types);
  /// Blocking-callee name test (shared with the direct rule).
  static bool is_blocking_callee(const std::string& name);

  /// "member 'x_'" / "static local 'reg'" when the access chain's root
  /// outlives the call; "" when it is function-local or unknown.
  std::string sink_kind(const FlowContext& ctx, const std::string& chain) const;

  const std::map<std::string, FuncNode>& funcs() const { return funcs_; }
  const CallGraphStats& stats() const { return stats_; }
  /// GraphViz dump: exact edges between repo functions, loop-affine nodes
  /// filled, blocking sinks boxed.
  std::string to_dot() const;

 private:
  void index(const std::vector<FileModel>& files);
  void compute_transitive_acquires();
  void infer_affinity();
  void compute_blocking_reach();
  void compute_escape_summaries();
  void compute_stats();

  std::vector<std::string> types_of(const FlowContext& ctx,
                                    const std::string& var) const;
  std::vector<std::string> classes_from_types(
      const std::vector<std::string>& types) const;
  std::vector<FuncNode*> methods_of(const std::string& cls,
                                    const std::string& name) const;
  /// methods_of plus the hierarchy walk (bases + all overriders).
  std::vector<FuncNode*> methods_of_virtual(const std::string& cls,
                                            const std::string& name) const;
  Resolution name_fallback(const std::string& name) const;
  bool name_known(const std::string& name) const;

  const std::vector<FileModel>* files_ = nullptr;
  std::map<std::string, FuncNode> funcs_;
  // class simple-name -> method simple-name -> overload set
  std::map<std::string, std::map<std::string, std::vector<FuncNode*>>>
      by_class_;
  std::map<std::string, std::vector<FuncNode*>> free_by_simple_;
  // class simple-name -> member -> type tokens
  std::map<std::string,
           std::unordered_map<std::string, std::vector<std::string>>>
      members_;
  std::set<std::string> known_classes_;
  std::map<std::string, std::set<std::string>> bases_;    // class -> bases
  std::map<std::string, std::set<std::string>> derived_;  // base -> deriveds
  CallGraphStats stats_;
};

}  // namespace cs::lint
