#include "cslint.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>

namespace cs::lint {

namespace {

namespace fs = std::filesystem;

/// '/'-normalized path for substring scoping (works on absolute paths too).
std::string generic(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_in(std::string_view display_path,
             std::initializer_list<const char*> dirs) {
  const std::string p = generic(display_path);
  for (const char* dir : dirs) {
    if (p.find(dir) != std::string::npos) return true;
    // Repo-relative invocations may drop the leading "src/".
    if (p.rfind(std::string_view(dir).substr(4), 0) == 0) return true;
  }
  return false;
}

bool is_header(std::string_view display_path) {
  const std::string p = generic(display_path);
  return p.size() >= 4 && p.compare(p.size() - 4, 4, ".hpp") == 0;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Inverse of strip_comments_and_strings for annotation scanning: keep only
/// *comment* text (newlines preserved), blanking code, string literals, and
/// char literals — so an allow() spelling quoted inside a rule message never
/// registers as an annotation site.
std::string extract_comments(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { Code, Line, Block, Str, Chr, Raw } state = State::Code;
  std::string raw_delim;
  auto blank = [&](char ch) { out += ch == '\n' ? '\n' : ' '; };
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char ch = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (ch == '/' && next == '/') {
          state = State::Line;
          out += "  ";
          ++i;
        } else if (ch == '/' && next == '*') {
          state = State::Block;
          out += "  ";
          ++i;
        } else if (ch == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(' && src[j] != '\n')
            raw_delim += src[j++];
          if (j < src.size() && src[j] == '(') {
            out.append(raw_delim.size() + 3, ' ');
            i = j;
            state = State::Raw;
          } else {
            out += ' ';
          }
        } else if (ch == '"') {
          state = State::Str;
          out += ' ';
        } else if (ch == '\'') {
          state = State::Chr;
          out += ' ';
        } else {
          blank(ch);
        }
        break;
      case State::Line:
        if (ch == '\n') {
          state = State::Code;
          out += ch;
        } else {
          out += ch;
        }
        break;
      case State::Block:
        if (ch == '*' && next == '/') {
          state = State::Code;
          out += "  ";
          ++i;
        } else {
          out += ch;
        }
        break;
      case State::Str:
        if (ch == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (ch == '"') {
          state = State::Code;
          out += ' ';
        } else {
          blank(ch);
        }
        break;
      case State::Chr:
        if (ch == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (ch == '\'') {
          state = State::Code;
          out += ' ';
        } else {
          blank(ch);
        }
        break;
      case State::Raw:
        if (ch == ')' &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() &&
            src[i + 1 + raw_delim.size()] == '"') {
          out.append(raw_delim.size() + 2, ' ');
          i += raw_delim.size() + 1;
          state = State::Code;
        } else {
          blank(ch);
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(pos));
      break;
    }
    lines.emplace_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Text rules.  Each receives the stripped line (comments/strings blanked) and
// appends violations; the caller handles allow-annotations and excerpts.
// ---------------------------------------------------------------------------

// RAII guard receivers whose .lock()/.unlock() is legitimate:
// std::unique_lock conventionally named lock/lk/guard/ul, and
// std::weak_ptr::lock() (receiver names containing "weak" or ending in _wp).
const std::regex kRawLockRe(
    R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*(?:un)?lock\s*\(\s*\))");
const std::regex kGuardReceiverRe(
    R"(^(lock|lk|guard|ul|l)$|weak|_wp$|wp_$)");

// Floating literal adjacent to ==/!= (either side).
const std::regex kFloatEqRe(
    R"((\d+\.\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]?\s*(==|!=)|(==|!=)\s*[-+]?(\d+\.\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|\d+[eE][+-]?\d+))");

const std::regex kStdRandRe(
    R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brand\s*\(\s*\)|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");

// std::function in the numeric core: the owning, allocating erasure defeats
// the batched-evaluation channel FunctionRef carries.
const std::regex kStdFunctionRe(R"(\bstd\s*::\s*function\b)");

// `<ident|)|]> - c` where c is the whole word "c" (the communication
// overhead in period arithmetic).  The captured left token lets the rule
// drop keyword-led unary minus ("return -c * ...").
const std::regex kPositiveSubRe(R"(([A-Za-z0-9_]+|\)|\])\s*-\s*c\b)");
const std::regex kKeywordLhsRe(R"(^(return|else|case|co_return|goto)$)");

void rule_raw_lock(std::string_view stripped, std::size_t /*lineno*/,
                   std::vector<std::string>& hits) {
  const std::string line(stripped);
  auto begin = std::sregex_iterator(line.begin(), line.end(), kRawLockRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string receiver = (*it)[1].str();
    if (std::regex_search(receiver, kGuardReceiverRe)) continue;
    hits.push_back("raw '" + it->str() +
                   "': acquire mutexes through std::lock_guard / "
                   "std::unique_lock (RAII), never bare lock()/unlock()");
  }
}

void rule_float_eq(std::string_view stripped,
                   std::vector<std::string>& hits) {
  const std::string line(stripped);
  if (std::regex_search(line, kFloatEqRe)) {
    hits.push_back(
        "floating-point ==/!= against a literal: use "
        "cs::num::approx_eq (numerics/approx.hpp); with default tolerances "
        "approx_eq(x, 0.0) is still an exact-zero test");
  }
}

void rule_std_rand(std::string_view stripped,
                   std::vector<std::string>& hits) {
  const std::string line(stripped);
  if (std::regex_search(line, kStdRandRe)) {
    hits.push_back(
        "banned randomness/time source (std::rand / srand / time(nullptr)): "
        "use cs::num::RandomStream (numerics/rng.hpp) so runs stay "
        "deterministic and stream-splittable");
  }
}

void rule_std_function(std::string_view stripped,
                       std::vector<std::string>& hits) {
  const std::string line(stripped);
  if (std::regex_search(line, kStdFunctionRe)) {
    hits.push_back(
        "std::function in the numeric core: take cs::num::FunctionRef "
        "(numerics/function_ref.hpp) instead — non-owning, no allocation, "
        "and it forwards the callee's eval_many batch channel, which "
        "std::function erases");
  }
}

void rule_positive_sub(std::string_view stripped,
                       std::vector<std::string>& hits) {
  const std::string line(stripped);
  if (line.find("positive_sub") != std::string::npos) return;
  auto begin = std::sregex_iterator(line.begin(), line.end(), kPositiveSubRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string lhs = (*it)[1].str();
    if (std::regex_match(lhs, kKeywordLhsRe)) continue;
    // Numeric LHS ("1.0 - c") is scalar algebra, not period arithmetic.
    if (std::all_of(lhs.begin(), lhs.end(), [](unsigned char ch) {
          return std::isdigit(ch) != 0;
        }))
      continue;
    hits.push_back(
        "bare '<expr> - c' period arithmetic: payloads are (t - c)+ — use "
        "positive_sub(expr, c) (core/schedule.hpp), or annotate "
        "'cslint: allow(positive-sub)' when signed slack is intentional");
    return;  // one finding per line is enough
  }
}

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { Code, Line, Block, Str, Chr, Raw } state = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char ch = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (ch == '/' && next == '/') {
          state = State::Line;
          out += "  ";
          ++i;
        } else if (ch == '/' && next == '*') {
          state = State::Block;
          out += "  ";
          ++i;
        } else if (ch == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(' && src[j] != '\n')
            raw_delim += src[j++];
          if (j < src.size() && src[j] == '(') {
            out += "R\"";
            out.append(raw_delim.size() + 1, ' ');
            i = j;
            state = State::Raw;
          } else {
            out += ch;  // not actually a raw string
          }
        } else if (ch == '"') {
          state = State::Str;
          out += ch;
        } else if (ch == '\'') {
          state = State::Chr;
          out += ch;
        } else {
          out += ch;
        }
        break;
      case State::Line:
        if (ch == '\n') {
          state = State::Code;
          out += ch;
        } else {
          out += ' ';
        }
        break;
      case State::Block:
        if (ch == '*' && next == '/') {
          state = State::Code;
          out += "  ";
          ++i;
        } else {
          out += ch == '\n' ? '\n' : ' ';
        }
        break;
      case State::Str:
        if (ch == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (ch == '"') {
          state = State::Code;
          out += ch;
        } else {
          out += ch == '\n' ? '\n' : ' ';
        }
        break;
      case State::Chr:
        if (ch == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (ch == '\'') {
          state = State::Code;
          out += ch;
        } else {
          out += ch == '\n' ? '\n' : ' ';
        }
        break;
      case State::Raw: {
        // Close on )delim"
        if (ch == ')' &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() &&
            src[i + 1 + raw_delim.size()] == '"') {
          out += ')';
          out.append(raw_delim.size(), ' ');
          out += '"';
          i += raw_delim.size() + 1;
          state = State::Code;
        } else {
          out += ch == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

bool line_allows(std::string_view raw_line, std::string_view rule) {
  const std::size_t tag = raw_line.find("cslint:");
  if (tag == std::string_view::npos) return false;
  const std::size_t open = raw_line.find("allow(", tag);
  if (open == std::string_view::npos) return false;
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string_view::npos) return false;
  std::string list(raw_line.substr(open + 6, close - open - 6));
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (trim(item) == rule) return true;
  }
  return false;
}

void SuppressionTracker::scan(std::string_view display_path,
                              std::string_view content) {
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> comment_lines =
      split_lines(extract_comments(content));
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    // Same grammar as line_allows, but over comment text only, and the
    // comment must *begin* with the tag: prose that mentions the annotation
    // syntax mid-sentence (rule messages, this tool's own docs) is not an
    // annotation site.
    const std::string line = trim(comment_lines[i]);
    if (line.rfind("cslint:", 0) != 0) continue;
    const std::size_t tag = 0;
    const std::size_t open = line.find("allow(", tag);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    std::stringstream ss(line.substr(open + 6, close - open - 6));
    std::string item;
    while (std::getline(ss, item, ',')) {
      const std::string rule = trim(item);
      if (rule.empty()) continue;
      sites_.push_back(Site{std::string(display_path), i + 1, rule,
                            i < raw_lines.size() ? trim(raw_lines[i]) : "",
                            false});
    }
  }
}

void SuppressionTracker::mark_used(std::string_view file,
                                   std::size_t annotation_line,
                                   std::string_view rule) {
  for (Site& s : sites_) {
    if (s.line == annotation_line && s.rule == rule && s.file == file)
      s.used = true;
  }
}

std::vector<Violation> SuppressionTracker::stale() const {
  std::vector<Violation> out;
  for (const Site& s : sites_) {
    if (s.used) continue;
    out.push_back(Violation{
        s.file, s.line, "stale-suppression",
        "allow(" + s.rule +
            ") suppresses nothing on this line or the one below: the code "
            "it excused is gone — delete the annotation",
        s.excerpt});
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

std::vector<Violation> lint_source(std::string_view display_path,
                                   std::string_view content,
                                   SuppressionTracker* supp) {
  std::vector<Violation> out;
  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> code_lines = split_lines(stripped);

  const bool float_eq_scope =
      path_in(display_path, {"src/core/", "src/numerics/"});
  const bool positive_sub_scope =
      path_in(display_path, {"src/core/", "src/sim/"});
  const bool std_function_scope =
      path_in(display_path, {"src/core/", "src/numerics/"});

  auto report = [&](std::size_t lineno, const char* rule,
                    const std::string& message) {
    const std::string& raw =
        lineno >= 1 && lineno <= raw_lines.size() ? raw_lines[lineno - 1] : "";
    // The annotation may sit on the offending line or the one above it
    // (common when the code line is already at the column limit).
    if (line_allows(raw, rule)) {
      if (supp != nullptr) supp->mark_used(display_path, lineno, rule);
      return;
    }
    if (lineno >= 2 && line_allows(raw_lines[lineno - 2], rule)) {
      if (supp != nullptr) supp->mark_used(display_path, lineno - 1, rule);
      return;
    }
    out.push_back(Violation{std::string(display_path), lineno, rule, message,
                            trim(raw)});
  };

  if (is_header(display_path)) {
    // pragma-once: the first non-blank code line must be the guard.
    bool found = false;
    for (const std::string& line : code_lines) {
      const std::string t = trim(line);
      if (t.empty()) continue;
      found = t.rfind("#pragma once", 0) == 0;
      break;
    }
    if (!found) {
      report(1, "pragma-once",
             "header must start with #pragma once (before any declaration)");
    }
  }

  // atomic-order is stateful across lines: a compare_exchange call spans
  // lines when the order arguments wrap, so track "inside a CAS statement"
  // from the call token until the statement closes (;, {, or }).
  bool cas_active = false;

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    std::vector<std::string> hits;

    if (code_lines[i].find("compare_exchange") != std::string::npos)
      cas_active = true;
    if (cas_active &&
        code_lines[i].find("memory_order_relaxed") != std::string::npos) {
      report(lineno, "atomic-order",
             "memory_order_relaxed inside a compare_exchange statement: CAS "
             "loops carry the synchronizing edges of lock-free code (see "
             "steal/deque.hpp's ordering argument) — use seq_cst/acq_rel, "
             "or annotate 'cslint: allow(atomic-order)' after auditing");
    }
    if (cas_active &&
        code_lines[i].find_first_of(";{}") != std::string::npos)
      cas_active = false;

    rule_raw_lock(code_lines[i], lineno, hits);
    for (const std::string& m : hits) report(lineno, "raw-lock", m);
    hits.clear();

    rule_std_rand(code_lines[i], hits);
    for (const std::string& m : hits) report(lineno, "std-rand", m);
    hits.clear();

    if (float_eq_scope) {
      rule_float_eq(code_lines[i], hits);
      for (const std::string& m : hits) report(lineno, "float-eq", m);
      hits.clear();
    }

    if (positive_sub_scope) {
      rule_positive_sub(code_lines[i], hits);
      for (const std::string& m : hits) report(lineno, "positive-sub", m);
      hits.clear();
    }

    if (std_function_scope) {
      rule_std_function(code_lines[i], hits);
      for (const std::string& m : hits) report(lineno, "std-function", m);
      hits.clear();
    }
  }
  return out;
}

std::vector<Violation> lint_file(const std::filesystem::path& path,
                                 SuppressionTracker* supp) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Violation{path.generic_string(), 0, "io",
                      "cannot open file for reading", ""}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = std::move(ss).str();
  if (supp != nullptr) supp->scan(path.generic_string(), content);
  return lint_source(path.generic_string(), content, supp);
}

std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root) {
  std::vector<fs::path> out;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp";
  };
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (want(root)) out.push_back(root);
    return out;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      // Prune build trees, hidden directories, and fixture corpora (testdata
      // snippets violate rules on purpose); everything else (including newly
      // added src/ subdirectories) is walked with no hardcoded list.
      const std::string name = it->path().filename().generic_string();
      if (name.rfind("build", 0) == 0 || name == "testdata" ||
          (!name.empty() && name[0] == '.'))
        it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && want(it->path())) out.push_back(it->path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

HeaderCheckResult check_one_header(const std::filesystem::path& header,
                                   const HeaderCheckOptions& opt) {
  HeaderCheckResult result;
  std::error_code ec;
  const fs::path tmpdir =
      fs::temp_directory_path(ec) / ("cslint-" + std::to_string(::getpid()));
  fs::create_directories(tmpdir, ec);
  const fs::path tu = tmpdir / "standalone_tu.cpp";
  const fs::path log = tmpdir / "standalone_tu.log";

  // Include dir + repo-style include spelling: ".../src/engine/x.hpp"
  // becomes -I".../src" + #include "engine/x.hpp".  Absolutize first so
  // relative invocations ("cslint src/") still find the src root.
  const std::string gen = fs::absolute(header, ec).generic_string();
  const std::size_t src_at = gen.rfind("/src/");
  std::string include_dir;
  std::string spelling;
  if (src_at != std::string::npos) {
    include_dir = gen.substr(0, src_at + 4);
    spelling = gen.substr(src_at + 5);
  } else {
    include_dir = header.parent_path().generic_string();
    spelling = header.filename().generic_string();
  }

  {
    std::ofstream tu_out(tu, std::ios::trunc);
    tu_out << "#include \"" << spelling << "\"\n";
  }
  std::string cmd = opt.compiler + " " + opt.std_flag + " -fsyntax-only";
  cmd += " -I\"" + include_dir + "\"";
  for (const std::string& dir : opt.include_dirs) cmd += " -I\"" + dir + "\"";
  cmd += " \"" + tu.generic_string() + "\" > \"" + log.generic_string() +
         "\" 2>&1";
  if (std::system(cmd.c_str()) != 0) {
    result.ok = false;
    std::ifstream log_in(log);
    std::string line;
    for (int n = 0; n < 3 && std::getline(log_in, line); ++n) {
      if (!result.message.empty()) result.message += " | ";
      result.message += trim(line);
    }
  }
  fs::remove_all(tmpdir, ec);
  return result;
}

std::vector<Violation> check_headers_standalone(
    const std::vector<std::filesystem::path>& headers,
    const HeaderCheckOptions& opt) {
  std::vector<Violation> out;
  for (const fs::path& header : headers) {
    if (header.extension() != ".hpp") continue;
    const HeaderCheckResult r = check_one_header(header, opt);
    if (!r.ok) {
      out.push_back(Violation{
          header.generic_string(), 0, "header-standalone",
          "header does not compile as a standalone TU (missing includes?): " +
              r.message,
          ""});
    }
  }
  return out;
}

}  // namespace cs::lint
