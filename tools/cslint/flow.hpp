// cslint flow-aware analysis — a lightweight structural parser over the
// token stream (token.hpp) and the four rule families that run on it:
//
//   thread-affinity   functions/methods annotated `// cs: affinity(loop)`
//                     may only be called from other loop-affine code or from
//                     inside lambdas handed to post()/add()/set_tick() (which
//                     run on the loop thread by construction).  A lambda can
//                     also be declared loop-affine with the same annotation
//                     on its intro line or the line above.
//   must-use          a discarded call to a function returning
//                     cs::Expected<...> or cs::Error is an error (pairs with
//                     [[nodiscard]] on the types: the linter also covers
//                     fixtures and code paths the compiler never sees).
//   lock-order        the mutex acquisition graph (lexical nesting + calls
//                     made while a guard is held, resolved through the call
//                     graph) must be acyclic; a cycle is a latent ABBA
//                     deadlock that TSan only catches with interleaving luck.
//   blocking-in-loop  loop-affine code must not call blocking primitives:
//                     direct solver entry points, connect/poll-style
//                     syscalls, sleeps, joins, or future/condvar waits.
//
// The parser is structural, not a C++ front-end: it tracks namespaces,
// classes, function bodies, lambdas, call sites, lock acquisitions, and
// local/member variable types — enough to resolve `raw->conn->send(...)`
// to cs::net::Conn::send without a real type checker.  Known limits (all
// documented in DESIGN.md §11): calls through std::function values and
// overload sets that disagree on a property are not resolved (false
// negatives, never false positives).
//
// Suppression: `// cslint: allow(<rule>)` on the offending line or the line
// above, exactly like the text rules.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cslint.hpp"

namespace cs::lint {

/// One call site inside a function or lambda body.
struct FlowCall {
  std::string callee;     ///< simple name ("send", "solve")
  std::string receiver;   ///< receiver chain, outermost-first ("raw","conn")
  std::string qualifier;  ///< explicit "A::B" qualification; "::" = global
  std::size_t line = 0;
  bool discards_result = false;  ///< whole statement is just this call
  std::vector<std::string> held_mutexes;  ///< guards active at the call
  /// Per top-level argument: the lone identifier passed (possibly through
  /// std::move), or "" when the argument is any other expression.
  std::vector<std::string> args;
};

/// A lexical lock-nesting edge: `to` acquired while `from` is held.
struct FlowLockEdge {
  std::string from;
  std::string to;
  std::size_t line = 0;
};

/// `lhs = rhs;` where rhs is a lone identifier (non-owning escape tracking).
/// lhs is a dot-joined access chain with a leading `this` stripped.
struct FlowAssign {
  std::string lhs;
  std::string rhs;
  std::size_t line = 0;
};

/// `return x;` where x is a lone identifier (possibly through std::move).
struct FlowReturn {
  std::string ident;
  std::size_t line = 0;
};

/// One entry of a lambda capture list (named captures only; a bare default
/// is recorded in FlowContext::capture_default instead).
struct FlowCapture {
  std::string name;
  bool by_ref = false;
};

/// One function, method, or lambda body (or a pure declaration).
struct FlowContext {
  std::string name;        ///< qualified (ns::Class::fn); lambdas get
                           ///< parent-name + "::<lambda@line>"
  std::string simple;      ///< unqualified name ("" for lambdas)
  std::string class_name;  ///< innermost enclosing class ("" = free)
  std::string file;
  std::size_t line = 0;
  bool is_lambda = false;
  bool is_template = false;      ///< header started with template<...>
  bool loop_affine = false;      ///< `cs: affinity(loop)` (or inferred)
  bool returns_must_use = false; ///< return type mentions Expected / Error
  bool defined = false;          ///< has a body (false = declaration only)
  std::vector<FlowCall> calls;
  std::vector<std::string> direct_mutexes;  ///< mutexes acquired lexically
  std::vector<FlowLockEdge> lock_edges;     ///< lexical nesting edges
  /// Variable name -> type-name candidates (params, locals, for-decls).
  std::unordered_map<std::string, std::vector<std::string>> var_types;
  /// Parameter names in declaration order ("" for unnamed / unparsed), so
  /// escape summaries can be matched positionally across call sites.
  std::vector<std::string> param_order;
  /// Locals declared `static` (they outlive the call — escape targets).
  std::vector<std::string> static_locals;
  /// `// cslint: holds(m, ...)` contract: mutexes the caller holds on entry.
  std::vector<std::string> holds;
  std::vector<FlowAssign> assigns;  ///< lone-identifier assignments
  std::vector<FlowReturn> rets;     ///< lone-identifier returns
  // Lambda-only fields:
  char capture_default = 0;           ///< '=', '&', or 0 (none)
  std::vector<FlowCapture> captures; ///< named captures
  /// Where the lambda expression itself went, judged at its intro site:
  /// "" (stays local), "return" (returned), "=chain" (assigned to chain),
  /// ">callee" (passed as an argument to callee).
  std::string escape;
};

/// Everything the parser recovers from one source file.
struct FileModel {
  std::string path;                     ///< display path (as passed in)
  std::vector<std::string> raw_lines;   ///< for allow() checks + excerpts
  std::vector<FlowContext> contexts;
  /// Class name -> member variable -> type-name candidates.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<std::string>>>
      members;
  /// Class name -> base-class simple names (public/private alike), for
  /// virtual-call resolution to overriders.
  std::unordered_map<std::string, std::vector<std::string>> class_bases;
  std::vector<std::string> includes;  ///< quoted #include spellings
};

/// Parse one in-memory source into its structural model.
[[nodiscard]] FileModel parse_file_model(std::string display_path,
                                         std::string_view content);

struct FlowOptions {
  bool thread_affinity = true;
  bool must_use = true;
  bool lock_order = true;
  bool blocking_in_loop = true;
  bool nonowning_escape = true;
  /// Interprocedural propagation over the call graph: transitive blocking
  /// chains, affinity inference, holds() contracts, escape summaries.
  bool transitive = true;
};

/// Whole-program driver: add every source, then run() resolves calls across
/// files (affinity seeds in headers apply to call sites in .cpp files, the
/// lock graph unions per-TU edges) and evaluates the four rule families.
/// When `supp` is given, allow() annotations that suppress a flow finding
/// are marked used (stale-suppression support).
class FlowAnalyzer {
 public:
  void add_source(std::string display_path, std::string_view content);
  /// Inject an already-parsed model (summary-cache hits skip the parse).
  void add_model(FileModel model);
  [[nodiscard]] std::vector<Violation> run(
      const FlowOptions& opt = {}, SuppressionTracker* supp = nullptr) const;

  [[nodiscard]] const std::vector<FileModel>& files() const noexcept {
    return files_;
  }

 private:
  std::vector<FileModel> files_;
};

/// Single-file convenience for tests: parse + analyze one source alone.
[[nodiscard]] std::vector<Violation> lint_flow(std::string_view display_path,
                                               std::string_view content,
                                               const FlowOptions& opt = {});

}  // namespace cs::lint
