// Per-function summary cache: persists the structural FileModels the parser
// recovers (contexts, calls, members, bases — everything the interprocedural
// layer consumes) so repeat runs skip the parse entirely, --strict included.
//
// Keying follows the include-closure cache: the FNV-1a content hash is the
// authority.  Each record also carries the file's mtime+size as a fast path —
// when they match, the hash compare is skipped; when they differ but the
// content hash still matches (touch-without-change), the record stays a hit
// and its mtime is refreshed in place.
//
// raw_lines are deliberately not serialized: the caller has the file content
// in memory anyway (the text rules need it) and rebuilds them with
// split_lines().
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_map>

#include "flow.hpp"

namespace cs::lint {

/// Split file content into lines (no trailing '\n' kept), matching the
/// parser's raw_lines construction.
[[nodiscard]] std::vector<std::string> split_lines(std::string_view content);

class SummaryCache {
 public:
  void load(const std::filesystem::path& file);
  void save(const std::filesystem::path& file) const;

  /// Cached model for `path`, or nullptr.  mtime+size match is the fast
  /// path; otherwise the content hash decides (and a hash hit refreshes the
  /// stored mtime/size so the fast path works next run).  The returned
  /// model has empty raw_lines — fill them from `content` via split_lines.
  [[nodiscard]] const FileModel* lookup(const std::string& path,
                                        long long mtime, long long size,
                                        std::string_view content);

  void put(const std::string& path, long long mtime, long long size,
           std::string_view content, const FileModel& model);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t fast_hits() const noexcept { return fast_hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    long long mtime = 0;
    long long size = 0;
    std::uint64_t hash = 0;
    FileModel model;  ///< raw_lines empty
  };
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;       ///< hash-verified hits (mtime changed)
  std::size_t fast_hits_ = 0;  ///< mtime+size fast-path hits
  std::size_t misses_ = 0;
};

}  // namespace cs::lint
