// System (3.6) — the paper's inductive period-length prescription — checked
// against the closed forms Section 4 derives for each family.
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "core/recurrence.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Recurrence, UniformRiskGivesArithmeticDecrement) {
  // Section 4.1, eq. (4.1): t_k = t_{k-1} - c for p = 1 - t/L.
  const UniformRisk p(400.0);
  const double c = 3.0;
  const RecurrenceEngine eng(p, c);
  const auto r = eng.generate(60.0);
  ASSERT_GE(r.schedule.size(), 5u);
  for (std::size_t k = 1; k < r.schedule.size(); ++k)
    EXPECT_NEAR(r.schedule[k], r.schedule[k - 1] - c, 1e-7) << "k=" << k;
}

TEST(Recurrence, PolynomialRiskClosedForm) {
  // Section 4.1: t_k = ((1 + d(t_{k-1}-c)/T_{k-1})^{1/d} - 1) T_{k-1}.
  const int d = 3;
  const PolynomialRisk p(d, 500.0);
  const double c = 2.0;
  const RecurrenceEngine eng(p, c);
  const auto r = eng.generate(120.0);
  ASSERT_GE(r.schedule.size(), 3u);
  const auto ends = r.schedule.end_times();
  for (std::size_t k = 1; k < r.schedule.size(); ++k) {
    const double T = ends[k - 1];
    const double predicted =
        (std::pow(1.0 + d * (r.schedule[k - 1] - c) / T, 1.0 / d) - 1.0) * T;
    EXPECT_NEAR(r.schedule[k], predicted, 1e-6 * predicted) << "k=" << k;
  }
}

TEST(Recurrence, GeometricLifespanClosedForm) {
  // Section 4.2, eq. (4.6): a^{-t_k} + t_{k-1} ln a = 1 + c ln a.
  const GeometricLifespan p(1.03);
  const double c = 1.0;
  const RecurrenceEngine eng(p, c);
  const auto r = eng.generate(12.0);
  ASSERT_GE(r.schedule.size(), 3u);
  const double ln_a = p.ln_a();
  for (std::size_t k = 1; k < r.schedule.size(); ++k) {
    EXPECT_NEAR(std::pow(p.a(), -r.schedule[k]) + r.schedule[k - 1] * ln_a,
                1.0 + c * ln_a, 1e-9)
        << "k=" << k;
  }
}

TEST(Recurrence, GeometricLifespanFixedPointIsStationary) {
  // At the BCLR optimum t* the recurrence must reproduce t* forever
  // (memorylessness): a^{-t*} = 1 - (t* - c) ln a.
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  // Solve the fixed point directly.
  const double ln_a = p.ln_a();
  double t_star = 10.0;
  for (int i = 0; i < 200; ++i) {
    t_star = c + (1.0 - std::exp(-t_star * ln_a)) / ln_a;
  }
  const RecurrenceEngine eng(p, c);
  const auto r = eng.generate(t_star);
  ASSERT_GE(r.schedule.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k)
    EXPECT_NEAR(r.schedule[k], t_star, 1e-6) << "k=" << k;
}

TEST(Recurrence, GeometricRiskClosedForm) {
  // Section 4.3, eq. (4.7): t_{k+1} = log2((t_k - c) ln 2 + 1).
  const GeometricRisk p(30.0);
  const double c = 1.0;
  const RecurrenceEngine eng(p, c);
  const auto r = eng.generate(20.0);
  ASSERT_GE(r.schedule.size(), 2u);
  constexpr double kLn2 = 0.6931471805599453;
  for (std::size_t k = 1; k < r.schedule.size(); ++k) {
    const double predicted = std::log2((r.schedule[k - 1] - c) * kLn2 + 1.0);
    EXPECT_NEAR(r.schedule[k], predicted, 1e-7) << "k=" << k;
  }
}

TEST(Recurrence, RequiresProductiveT0) {
  const UniformRisk p(100.0);
  const RecurrenceEngine eng(p, 2.0);
  EXPECT_THROW(eng.generate(2.0), std::invalid_argument);
  EXPECT_THROW(eng.generate(1.0), std::invalid_argument);
}

TEST(Recurrence, RejectsNegativeC) {
  const UniformRisk p(100.0);
  EXPECT_THROW(RecurrenceEngine(p, -1.0), std::invalid_argument);
}

TEST(Recurrence, PeriodCapRespected) {
  const GeometricLifespan p(1.000001);  // nearly flat: very many periods
  RecurrenceOptions opt;
  opt.max_periods = 7;
  opt.tail_tol = 0.0;
  const RecurrenceEngine eng(p, 0.001, opt);
  const auto r = eng.generate(1.0);
  EXPECT_EQ(r.schedule.size(), 7u);
  EXPECT_EQ(r.stop, StopReason::PeriodCapReached);
}

TEST(Recurrence, ResidualsVanishOnGeneratedSchedule) {
  const PolynomialRisk p(2, 300.0);
  const RecurrenceEngine eng(p, 2.0);
  const auto r = eng.generate(80.0);
  for (double resid : eng.residuals(r.schedule))
    EXPECT_NEAR(resid, 0.0, 1e-8);
}

TEST(Recurrence, ResidualsNonzeroOnArbitrarySchedule) {
  const UniformRisk p(100.0);
  const RecurrenceEngine eng(p, 2.0);
  // Equal periods violate t_k = t_{k-1} - c for uniform risk.
  const auto res = eng.residuals(Schedule::equal_periods(10.0, 4));
  double max_resid = 0.0;
  for (double r : res) max_resid = std::max(max_resid, std::abs(r));
  EXPECT_GT(max_resid, 1e-3);
}

TEST(Recurrence, NextPeriodMatchesGenerate) {
  const GeometricRisk p(25.0);
  const RecurrenceEngine eng(p, 1.5);
  const auto r = eng.generate(15.0);
  ASSERT_GE(r.schedule.size(), 2u);
  const auto t1 = eng.next_period(15.0, 15.0);
  ASSERT_TRUE(t1.has_value());
  EXPECT_NEAR(*t1, r.schedule[1], 1e-10);
}

TEST(Recurrence, StopReasonNamesAreDistinct) {
  EXPECT_STRNE(to_string(StopReason::TargetExhausted),
               to_string(StopReason::Unproductive));
  EXPECT_STRNE(to_string(StopReason::HorizonReached),
               to_string(StopReason::TailNegligible));
}

// Property sweep: for every family and several t0, the generated schedule is
// strictly positive, productive except possibly nowhere (all periods > c by
// construction), ends for a stated reason, and satisfies its own residuals.
struct GenCase {
  const char* spec;
  double c;
  double t0;
};

class RecurrenceProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(RecurrenceProperty, GeneratedScheduleWellFormed) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const RecurrenceEngine eng(*p, c);
  const auto r = eng.generate(GetParam().t0);
  ASSERT_FALSE(r.schedule.empty());
  for (double t : r.schedule.periods()) EXPECT_GT(t, c);
  for (double resid : eng.residuals(r.schedule))
    EXPECT_NEAR(resid, 0.0, 1e-6);
  EXPECT_GT(expected_work(r.schedule, *p, c), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecurrenceProperty,
    ::testing::Values(GenCase{"uniform:L=200", 2.0, 30.0},
                      GenCase{"uniform:L=200", 2.0, 15.0},
                      GenCase{"polyrisk:d=2,L=300", 1.0, 60.0},
                      GenCase{"polyrisk:d=5,L=300", 1.0, 120.0},
                      GenCase{"geomlife:a=1.05", 0.5, 8.0},
                      GenCase{"geomrisk:L=40", 1.0, 25.0},
                      GenCase{"weibull:k=1.4,scale=60", 1.0, 20.0},
                      GenCase{"pareto:d=2", 1.0, 2.0}));

}  // namespace
}  // namespace cs
