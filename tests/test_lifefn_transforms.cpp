#include "lifefn/transforms.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(TimeScaled, StretchesAxis) {
  TimeScaled p(std::make_unique<UniformRisk>(10.0), 6.0);
  EXPECT_DOUBLE_EQ(p.survival(30.0), 0.5);  // = inner(5) on L=10
  ASSERT_TRUE(p.lifespan().has_value());
  EXPECT_DOUBLE_EQ(*p.lifespan(), 60.0);
}

TEST(TimeScaled, DerivativeChainRule) {
  TimeScaled p(std::make_unique<UniformRisk>(10.0), 6.0);
  EXPECT_NEAR(p.derivative(30.0), -1.0 / 60.0, 1e-12);
}

TEST(TimeScaled, PreservesShapeAndInverse) {
  TimeScaled p(std::make_unique<GeometricLifespan>(1.1), 3.0);
  EXPECT_EQ(p.shape(), Shape::Convex);
  EXPECT_NEAR(p.survival(p.inverse_survival(0.3)), 0.3, 1e-10);
}

TEST(TimeScaled, RejectsBadArgs) {
  EXPECT_THROW(TimeScaled(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(TimeScaled(std::make_unique<UniformRisk>(1.0), 0.0),
               std::invalid_argument);
}

std::vector<std::unique_ptr<LifeFunction>> two_uniforms() {
  std::vector<std::unique_ptr<LifeFunction>> v;
  v.push_back(std::make_unique<UniformRisk>(10.0));
  v.push_back(std::make_unique<UniformRisk>(30.0));
  return v;
}

TEST(Mixture, ConvexCombinationOfSurvivals) {
  Mixture mix(two_uniforms(), {0.25, 0.75});
  EXPECT_DOUBLE_EQ(mix.survival(0.0), 1.0);
  // At t=5: 0.25*0.5 + 0.75*(5/6 survival of L=30 => 1-1/6).
  EXPECT_NEAR(mix.survival(5.0), 0.25 * 0.5 + 0.75 * (1.0 - 5.0 / 30.0),
              1e-12);
  ASSERT_TRUE(mix.lifespan().has_value());
  EXPECT_DOUBLE_EQ(*mix.lifespan(), 30.0);
}

TEST(Mixture, UnboundedComponentMakesUnbounded) {
  std::vector<std::unique_ptr<LifeFunction>> v;
  v.push_back(std::make_unique<UniformRisk>(10.0));
  v.push_back(std::make_unique<GeometricLifespan>(1.1));
  Mixture mix(std::move(v), {0.5, 0.5});
  EXPECT_FALSE(mix.lifespan().has_value());
}

TEST(Mixture, ShapePropagation) {
  {
    std::vector<std::unique_ptr<LifeFunction>> v;
    v.push_back(std::make_unique<GeometricLifespan>(1.05));
    v.push_back(std::make_unique<GeometricLifespan>(1.2));
    EXPECT_EQ(Mixture(std::move(v), {0.5, 0.5}).shape(), Shape::Convex);
  }
  {
    std::vector<std::unique_ptr<LifeFunction>> v;
    v.push_back(std::make_unique<PolynomialRisk>(2, 50.0));
    v.push_back(std::make_unique<UniformRisk>(40.0));
    EXPECT_EQ(Mixture(std::move(v), {0.5, 0.5}).shape(), Shape::Concave);
  }
  EXPECT_EQ(Mixture(two_uniforms(), {0.5, 0.5}).shape(), Shape::Linear);
}

TEST(Mixture, MixedShapesDetectedNumerically) {
  // Uniform (linear) + exponential (convex) = convex mixture; but
  // concave + convex needs detection and typically lands on General.
  std::vector<std::unique_ptr<LifeFunction>> v;
  v.push_back(std::make_unique<PolynomialRisk>(4, 30.0));  // concave
  v.push_back(std::make_unique<GeometricLifespan>(1.5));   // convex
  const Mixture mix(std::move(v), {0.5, 0.5});
  EXPECT_NE(mix.shape(), Shape::Linear);
}

TEST(Mixture, DerivativeIsWeightedSum) {
  Mixture mix(two_uniforms(), {0.25, 0.75});
  EXPECT_NEAR(mix.derivative(5.0), 0.25 * (-0.1) + 0.75 * (-1.0 / 30.0),
              1e-12);
}

TEST(Mixture, CloneDeepCopies) {
  Mixture mix(two_uniforms(), {0.5, 0.5});
  const auto copy = mix.clone();
  EXPECT_EQ(copy->name(), mix.name());
  EXPECT_DOUBLE_EQ(copy->survival(7.0), mix.survival(7.0));
}

TEST(Mixture, ValidatesWeights) {
  EXPECT_THROW(Mixture(two_uniforms(), {0.5}), std::invalid_argument);
  EXPECT_THROW(Mixture(two_uniforms(), {0.7, 0.7}), std::invalid_argument);
  EXPECT_THROW(Mixture(two_uniforms(), {1.2, -0.2}), std::invalid_argument);
  EXPECT_THROW(Mixture({}, {}), std::invalid_argument);
}

TEST(Mixture, MeanLifespanIsWeightedAverage) {
  Mixture mix(two_uniforms(), {0.5, 0.5});
  EXPECT_NEAR(mix.mean_lifespan(), 0.5 * 5.0 + 0.5 * 15.0, 1e-8);
}

}  // namespace
}  // namespace cs
