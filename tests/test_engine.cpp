// Serving-engine tests: sharded LRU semantics, canonical keys, cache-hit
// short-circuiting, bit-identical parity with direct solver calls, and the
// single-flight guarantee (N concurrent identical requests -> 1 solve).
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/dp_reference.hpp"
#include "core/greedy.hpp"
#include "core/guideline.hpp"
#include "core/quantize.hpp"
#include "engine/lru_cache.hpp"
#include "engine/request.hpp"
#include "lifefn/factory.hpp"

namespace cs::engine {
namespace {

// ---------------------------------------------------------------- LRU cache

TEST(LruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<int> cache(/*capacity=*/3, /*shards=*/1);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  cache.put("d", 4);  // evicts "a", the oldest
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, GetRefreshesRecency) {
  ShardedLruCache<int> cache(3, 1);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  EXPECT_TRUE(cache.get("a").has_value());  // "a" becomes most recent
  cache.put("d", 4);                        // so "b" is evicted instead
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(LruCache, PutOverwritesInPlace) {
  ShardedLruCache<int> cache(2, 1);
  cache.put("a", 1);
  cache.put("a", 10);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("a").value(), 10);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCache, EvictionIsPerShard) {
  // Two shards of capacity 1 each: keys on different shards never displace
  // each other, keys on the same shard do.
  ShardedLruCache<int> cache(/*capacity=*/2, /*shards=*/2);
  std::string first = "k0";
  std::string same_shard;
  std::string other_shard;
  for (int i = 1; i < 64 && (same_shard.empty() || other_shard.empty()); ++i) {
    const std::string key = "k" + std::to_string(i);
    if (cache.shard_of(key) == cache.shard_of(first)) {
      if (same_shard.empty()) same_shard = key;
    } else if (other_shard.empty()) {
      other_shard = key;
    }
  }
  ASSERT_FALSE(same_shard.empty());
  ASSERT_FALSE(other_shard.empty());

  cache.put(first, 1);
  cache.put(other_shard, 2);  // different shard: no displacement
  EXPECT_TRUE(cache.get(first).has_value());
  cache.put(same_shard, 3);  // same shard, capacity 1: evicts `first`
  EXPECT_FALSE(cache.get(first).has_value());
  EXPECT_TRUE(cache.get(other_shard).has_value());
}

TEST(LruCache, ShardOfIsStableAndSpreads) {
  ShardedLruCache<int> cache(1024, 16);
  std::set<std::size_t> used;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::size_t s = cache.shard_of(key);
    EXPECT_LT(s, cache.shard_count());
    EXPECT_EQ(s, cache.shard_of(key));  // deterministic
    used.insert(s);
  }
  // 256 distinct keys over 16 shards: a hash that used only a couple of
  // shards would defeat the sharding; demand at least half in play.
  EXPECT_GE(used.size(), 8u);
}

TEST(LruCache, ClearKeepsTallies) {
  ShardedLruCache<int> cache(4, 2);
  cache.put("a", 1);
  EXPECT_TRUE(cache.get("a").has_value());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictionHookFires) {
  ShardedLruCache<int> cache(1, 1);
  int fired = 0;
  cache.set_eviction_hook([&] { ++fired; });
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  EXPECT_EQ(fired, 2);
}

// ----------------------------------------------------------- canonical keys

TEST(CanonicalKey, EquivalentSpecsCoalesce) {
  SolveRequest half;
  half.life = "geomlife:half=100";
  half.c = 2.0;
  SolveRequest a;
  a.life = make_life_function("geomlife:half=100")->spec();
  a.c = 2.0;
  EXPECT_EQ(canonical_key(half), canonical_key(a));
}

TEST(CanonicalKey, DistinguishesSolverOverheadAndQuantization) {
  SolveRequest base;
  base.life = "uniform:L=480";
  base.c = 4.0;

  SolveRequest other_solver = base;
  other_solver.solver = SolverKind::Greedy;
  SolveRequest other_c = base;
  other_c.c = 5.0;
  SolveRequest quantized = base;
  quantized.quantize = 2.0;

  EXPECT_NE(canonical_key(base), canonical_key(other_solver));
  EXPECT_NE(canonical_key(base), canonical_key(other_c));
  EXPECT_NE(canonical_key(base), canonical_key(quantized));
}

TEST(CanonicalKey, RejectsMalformedRequests) {
  SolveRequest req;
  req.life = "uniform:L=480";
  req.c = 0.0;  // c must be positive
  EXPECT_THROW((void)canonical_key(req), std::invalid_argument);
  req.c = 4.0;
  req.quantize = -1.0;
  EXPECT_THROW((void)canonical_key(req), std::invalid_argument);
  req.quantize.reset();
  req.life = "no-such-family:x=1";
  EXPECT_THROW((void)canonical_key(req), std::invalid_argument);
}

// ------------------------------------------------------------------ engine

SolveRequest uniform_request(double c = 4.0,
                             SolverKind solver = SolverKind::Guideline) {
  SolveRequest req;
  req.life = "uniform:L=480";
  req.c = c;
  req.solver = solver;
  return req;
}

TEST(Engine, CacheHitReturnsSharedResultWithoutSolving) {
  Engine engine;
  SolveInfo info;
  const ResultPtr first = engine.solve(uniform_request(), &info).value();
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(info.tier, SolveTier::Cold);
  const ResultPtr second = engine.solve(uniform_request(), &info).value();
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ(info.tier, SolveTier::Lru);
  // Same immutable object, not a re-computation.
  EXPECT_EQ(first.get(), second.get());
  const auto s = engine.stats();
  EXPECT_EQ(s.solves, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(Engine, EquivalentSpecsShareOneCacheEntry) {
  Engine engine;
  SolveRequest by_half;
  by_half.life = "geomlife:half=100";
  by_half.c = 2.0;
  SolveRequest by_a;
  by_a.life = make_life_function("geomlife:half=100")->spec();
  by_a.c = 2.0;

  const ResultPtr r1 = engine.solve(by_half).value();
  SolveInfo info;
  const ResultPtr r2 = engine.solve(by_a, &info).value();
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(engine.stats().solves, 1u);
}

TEST(Engine, GuidelineResultMatchesDirectCall) {
  Engine engine;
  const ResultPtr r = engine.solve(uniform_request()).value();

  const auto p = make_life_function("uniform:L=480");
  const auto direct = GuidelineScheduler(*p, 4.0, GuidelineOptions{}).run();
  EXPECT_EQ(r->schedule, direct.schedule);
  EXPECT_EQ(r->expected, direct.expected);
  EXPECT_EQ(r->chosen_t0, direct.chosen_t0);
  EXPECT_EQ(r->bracket_lo, direct.bracket.lower);
  EXPECT_EQ(r->bracket_hi, direct.bracket.upper);
  EXPECT_TRUE(r->has_bracket);
}

TEST(Engine, GreedyResultMatchesDirectCall) {
  Engine engine;
  const ResultPtr r =
      engine.solve(uniform_request(4.0, SolverKind::Greedy)).value();

  const auto p = make_life_function("uniform:L=480");
  const auto direct = greedy_schedule(*p, 4.0, GreedyOptions{});
  EXPECT_EQ(r->schedule, direct.schedule);
  EXPECT_EQ(r->expected, direct.expected);
}

TEST(Engine, DpResultMatchesDirectCall) {
  Engine engine;
  const ResultPtr r =
      engine.solve(uniform_request(8.0, SolverKind::Dp)).value();

  const auto p = make_life_function("uniform:L=480");
  const auto direct = dp_reference(*p, 8.0, DpOptions{});
  EXPECT_EQ(r->schedule, direct.schedule);
  EXPECT_EQ(r->expected, direct.expected);
}

TEST(Engine, QuantizedResultMatchesDirectPipeline) {
  SolveRequest req = uniform_request();
  req.quantize = 2.0;
  Engine engine;
  const ResultPtr r = engine.solve(req).value();

  const auto p = make_life_function("uniform:L=480");
  const auto g = GuidelineScheduler(*p, 4.0, GuidelineOptions{}).run();
  const auto q = quantize_schedule(g.schedule, *p, 4.0, 2.0);
  EXPECT_EQ(r->schedule, q.schedule);
  EXPECT_EQ(r->expected, q.expected);
}

TEST(Engine, BoundsSolverProducesBracketOnly) {
  Engine engine;
  const ResultPtr r =
      engine.solve(uniform_request(4.0, SolverKind::Bounds)).value();
  EXPECT_TRUE(r->schedule.empty());
  EXPECT_TRUE(r->has_bracket);
  EXPECT_GT(r->bracket_lo, 0.0);
  EXPECT_GE(r->bracket_hi, r->bracket_lo);

  const auto p = make_life_function("uniform:L=480");
  const auto direct = guideline_t0_bracket(*p, 4.0);
  EXPECT_EQ(r->bracket_lo, direct.lower);
  EXPECT_EQ(r->bracket_hi, direct.upper);
}

TEST(Engine, MalformedRequestReportsBadSpecAndCachesNothing) {
  Engine engine;
  SolveRequest bad;
  bad.life = "uniform:L=480";
  bad.c = -1.0;
  const auto bad_c = engine.solve(bad);
  ASSERT_FALSE(bad_c.ok());
  EXPECT_EQ(bad_c.error().code, cs::ErrorCode::BadSpec);
  EXPECT_FALSE(bad_c.error().retryable);
  bad.c = 4.0;
  bad.life = "gaussian:mu=1";
  const auto bad_life = engine.solve(bad);
  ASSERT_FALSE(bad_life.ok());
  EXPECT_EQ(bad_life.error().code, cs::ErrorCode::BadSpec);
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.stats().solves, 0u);
}

TEST(Engine, EvictionKeepsCacheAtCapacityAndCountsEvictions) {
  EngineOptions opt;
  opt.cache_capacity = 1;
  opt.cache_shards = 1;
  Engine engine(opt);
  for (int i = 1; i <= 4; ++i) {
    SolveRequest req;
    req.life = "uniform:L=" + std::to_string(100 * i);
    req.c = 4.0;
    (void)engine.solve(req);
  }
  EXPECT_EQ(engine.cache_size(), 1u);
  EXPECT_EQ(engine.stats().evictions, 3u);
  EXPECT_EQ(engine.stats().solves, 4u);
}

TEST(Engine, ClearCacheForcesResolve) {
  Engine engine;
  (void)engine.solve(uniform_request());
  engine.clear_cache();
  SolveInfo info;
  (void)engine.solve(uniform_request(), &info);
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(engine.stats().solves, 2u);
}

// ------------------------------------------------------------ single-flight

TEST(Engine, SingleFlightHammerSolvesEachKeyOnce) {
  // Many threads, each issuing every key several times, released together:
  // the engine must run the solver exactly once per unique key.
  constexpr int kThreads = 16;
  constexpr int kRepeats = 8;
  const std::vector<std::string> specs = {
      "uniform:L=480", "uniform:L=960", "geomlife:half=100",
      "weibull:k=1.5,scale=60"};

  Engine engine;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int r = 0; r < kRepeats; ++r) {
        for (const auto& spec : specs) {
          SolveRequest req;
          req.life = spec;
          req.c = 4.0;
          const auto res = engine.solve(req);
          if (!res.ok() || res.value()->schedule.empty()) failures.fetch_add(1);
        }
      }
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto s = engine.stats();
  EXPECT_EQ(s.solves, specs.size());
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kRepeats * specs.size());
  EXPECT_EQ(engine.cache_size(), specs.size());
}

TEST(Engine, SolveManyCoalescesDuplicatesAndPreservesOrder) {
  Engine engine;
  std::vector<SolveRequest> reqs;
  for (int i = 0; i < 12; ++i) {
    SolveRequest req;
    req.life = (i % 2 == 0) ? "uniform:L=480" : "geomlife:half=100";
    req.c = 4.0;
    reqs.push_back(req);
  }
  const auto results = engine.solve_many(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value()->canonical_life,
              make_life_function(reqs[i].life)->spec());
    // All requests for the same key resolve to the one shared result.
    EXPECT_EQ(results[i].value().get(), results[i % 2].value().get());
  }
  EXPECT_EQ(engine.stats().solves, 2u);
}

TEST(Engine, SolveAsyncDeliversSameSharedResult) {
  Engine engine;
  auto f1 = engine.solve_async(uniform_request());
  auto f2 = engine.solve_async(uniform_request());
  const ResultPtr r1 = f1.get().value();
  const ResultPtr r2 = f2.get().value();
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(engine.stats().solves, 1u);
}

TEST(Engine, ConcurrentFailuresPropagateToEveryWaiter) {
  // A spec that parses but cannot be canonicalized into a solvable request
  // fails as BadSpec on every call, concurrent or not, and poisons nothing.
  Engine engine;
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      SolveRequest bad;
      bad.life = "uniform:L=nope";
      bad.c = 4.0;
      const auto res = engine.solve(bad);
      if (!res.ok() && res.error().code == cs::ErrorCode::BadSpec)
        failed.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failed.load(), 8);
  // The engine still works afterwards.
  EXPECT_TRUE(engine.solve(uniform_request()).ok());
}

TEST(Engine, SolveManyFailsOnlyTheBadSlot) {
  Engine engine;
  std::vector<SolveRequest> reqs(3, uniform_request());
  reqs[1].life = "uniform:L=nope";
  const auto results = engine.solve_many(reqs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().code, cs::ErrorCode::BadSpec);
  EXPECT_TRUE(results[2].ok());
}

TEST(Engine, CachedProbeHitsOnlyAfterSolveAndTalliesHit) {
  Engine engine;
  const std::string key = canonical_key(uniform_request());
  EXPECT_FALSE(engine.cached(key).has_value());
  EXPECT_EQ(engine.stats().hits, 0u);

  const ResultPtr solved = engine.solve(uniform_request()).value();
  const auto probed = engine.cached(key);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->get(), solved.get());
  EXPECT_EQ(engine.stats().hits, 1u);
}

}  // namespace
}  // namespace cs::engine
