// The explicit -> folded communication-cost reduction (Section 2.1's
// architecture-independent model).
#include <gtest/gtest.h>

#include "numerics/rng.hpp"
#include "sim/network.hpp"

namespace cs::sim {
namespace {

TEST(Network, EffectiveOverheadIsTwoSetups) {
  EXPECT_DOUBLE_EQ(effective_overhead({.setup = 3.0, .per_byte = 0.1}), 6.0);
  EXPECT_DOUBLE_EQ(effective_overhead({.setup = 0.0, .per_byte = 1.0}), 0.0);
}

TEST(Network, EffectiveTaskDurationFoldsBytes) {
  const CommCostModel m{.setup = 1.0, .per_byte = 0.01};
  const TaskShape t{.compute = 5.0, .bytes_in = 100.0, .bytes_out = 50.0};
  EXPECT_DOUBLE_EQ(effective_task_duration(m, t), 5.0 + 1.5);
}

TEST(Network, ExplicitPeriodAccountsMessagesOnce) {
  const CommCostModel m{.setup = 2.0, .per_byte = 0.1};
  const std::vector<TaskShape> tasks{{1.0, 10.0, 5.0}, {2.0, 20.0, 10.0}};
  // ship: 2 + 0.1*30 = 5; compute: 3; collect: 2 + 0.1*15 = 3.5.
  EXPECT_DOUBLE_EQ(explicit_period_time(m, tasks), 11.5);
}

TEST(Network, FoldIdentityExact) {
  // The paper's reduction: folding byte costs into task durations and both
  // setups into c leaves period times unchanged — exactly.
  const CommCostModel m{.setup = 0.75, .per_byte = 3.2e-6};
  num::RandomStream rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TaskShape> tasks;
    const auto n = 1 + rng.below(20);
    for (std::uint64_t i = 0; i < n; ++i) {
      tasks.push_back({rng.uniform(0.1, 5.0), rng.uniform(0.0, 1e6),
                       rng.uniform(0.0, 1e5)});
    }
    EXPECT_LT(fold_identity_error(m, tasks), 1e-9) << "trial " << trial;
  }
}

TEST(Network, EmptyPeriodIsJustOverhead) {
  const CommCostModel m{.setup = 1.5, .per_byte = 0.1};
  EXPECT_DOUBLE_EQ(explicit_period_time(m, {}), 3.0);
  EXPECT_DOUBLE_EQ(folded_period_time(m, {}), 3.0);
}

TEST(Network, ValidatesInputs) {
  EXPECT_THROW((void)effective_overhead({.setup = -1.0, .per_byte = 0.0}),
               std::invalid_argument);
  const CommCostModel m{};
  EXPECT_THROW(
      (void)effective_task_duration(m, {.compute = -1.0, .bytes_in = 0.0,
                                  .bytes_out = 0.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cs::sim
