// Differentiation and quadrature.
#include <cmath>

#include <gtest/gtest.h>

#include "numerics/derivative.hpp"
#include "numerics/integrate.hpp"

namespace cs::num {
namespace {

TEST(Derivative, Polynomial) {
  auto f = [](double x) { return x * x * x - 4.0 * x; };
  EXPECT_NEAR(derivative(f, 2.0), 8.0, 1e-9);
  EXPECT_NEAR(derivative(f, 0.0), -4.0, 1e-9);
}

TEST(Derivative, Exponential) {
  auto f = [](double x) { return std::exp(-0.05 * x); };
  EXPECT_NEAR(derivative(f, 10.0), -0.05 * std::exp(-0.5), 1e-10);
}

TEST(Derivative, RichardsonBeatsPlainCentral) {
  auto f = [](double x) { return std::sin(x); };
  const double h = 1e-3;
  const double plain = (f(1.0 + h) - f(1.0 - h)) / (2.0 * h);
  const double rich = derivative(f, 1.0, h);
  EXPECT_LT(std::abs(rich - std::cos(1.0)), std::abs(plain - std::cos(1.0)));
}

TEST(ForwardDerivative, MatchesAtEdge) {
  auto f = [](double x) { return 1.0 - x * x; };
  EXPECT_NEAR(forward_derivative(f, 0.0), 0.0, 1e-6);
  EXPECT_NEAR(forward_derivative(f, 0.5), -1.0, 1e-6);
}

TEST(BackwardDerivative, MatchesAtEdge) {
  auto f = [](double x) { return 1.0 - x * x; };
  EXPECT_NEAR(backward_derivative(f, 1.0), -2.0, 1e-6);
}

TEST(SecondDerivative, Quadratic) {
  auto f = [](double x) { return 3.0 * x * x + x; };
  EXPECT_NEAR(second_derivative(f, 0.7), 6.0, 1e-5);
}

TEST(SecondDerivative, SignDetectsShape) {
  auto concave = [](double x) { return -x * x; };
  auto convex = [](double x) { return std::exp(x); };
  EXPECT_LT(second_derivative(concave, 1.0), 0.0);
  EXPECT_GT(second_derivative(convex, 1.0), 0.0);
}

TEST(Integrate, Polynomial) {
  const auto r = integrate([](double x) { return x * x; }, 0.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 9.0, 1e-10);
}

TEST(Integrate, ReversedLimitsNegate) {
  const auto fwd = integrate([](double x) { return std::sin(x); }, 0.0, 2.0);
  const auto rev = integrate([](double x) { return std::sin(x); }, 2.0, 0.0);
  EXPECT_NEAR(fwd.value, -rev.value, 1e-12);
}

TEST(Integrate, EmptyInterval) {
  const auto r = integrate([](double x) { return x; }, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(Integrate, SharpPeak) {
  // Narrow Gaussian: adaptivity must resolve it.
  auto f = [](double x) {
    const double d = x - 0.5;
    return std::exp(-1e4 * d * d);
  };
  const auto r = integrate(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(r.value, std::sqrt(M_PI / 1e4), 1e-8);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  const auto r =
      integrate_to_infinity([](double x) { return std::exp(-x / 7.0); }, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 7.0, 1e-7);
}

TEST(IntegrateToInfinity, ParetoTail) {
  // ∫ (1+t)^{-2} dt = 1.
  const auto r = integrate_to_infinity(
      [](double x) { return std::pow(1.0 + x, -2.0); }, 0.0, 1e-11, 1e-13);
  EXPECT_NEAR(r.value, 1.0, 1e-5);
}

TEST(IntegrateToInfinity, FromOffset) {
  const auto r = integrate_to_infinity(
      [](double x) { return std::exp(-x); }, 2.0);
  EXPECT_NEAR(r.value, std::exp(-2.0), 1e-9);
}

// Property: mean lifespan identity ∫ p = E[R] for exponential survival at
// several rates (the calibration the simulator relies on).
class MeanLifespan : public ::testing::TestWithParam<double> {};

TEST_P(MeanLifespan, IntegralOfSurvivalIsMean) {
  const double rate = GetParam();
  const auto r = integrate_to_infinity(
      [rate](double t) { return std::exp(-rate * t); }, 0.0);
  EXPECT_NEAR(r.value, 1.0 / rate, 1e-6 / rate);
}

INSTANTIATE_TEST_SUITE_P(Rates, MeanLifespan,
                         ::testing::Values(0.01, 0.1, 1.0, 5.0));

}  // namespace
}  // namespace cs::num
