// Loopback end-to-end tests for the csserve TCP front-end: protocol
// round-trips, caching across connections, graceful error handling, and the
// wire-format parser itself.
#include "engine/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/client.hpp"
#include "engine/protocol.hpp"

namespace cs::engine {
namespace {

// ------------------------------------------------------------- JSON subset

TEST(WireJson, ParsesFlatObject) {
  const auto obj = json::parse_object(
      R"({"life":"uniform:L=480","c":4,"deep":null,"on":true,"xs":[1,2.5]})");
  EXPECT_EQ(obj.at("life").string, "uniform:L=480");
  EXPECT_DOUBLE_EQ(obj.at("c").number, 4.0);
  EXPECT_EQ(obj.at("deep").type, json::Value::Type::Null);
  EXPECT_TRUE(obj.at("on").boolean);
  ASSERT_EQ(obj.at("xs").array.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.at("xs").array[1], 2.5);
}

TEST(WireJson, RejectsOutsideTheSubset) {
  EXPECT_THROW((void)json::parse_object(R"({"a":{"nested":1}})"),
               std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":["strings"]})"),
               std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":1)"), std::invalid_argument);
  EXPECT_THROW((void)json::parse_object("not json"), std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":1} trailing)"),
               std::invalid_argument);
}

TEST(WireJson, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te";
  const std::string line = "{\"s\":\"" + json::escape(nasty) + "\"}";
  EXPECT_EQ(json::parse_object(line).at("s").string, nasty);
}

TEST(WireRequestParse, SolveDefaultsAndOverrides) {
  const auto req = parse_request_line(
      R"({"id":7,"life":"uniform:L=480","c":4})");
  EXPECT_EQ(req.cmd, WireCommand::Solve);
  ASSERT_TRUE(req.id.has_value());
  EXPECT_EQ(*req.id, 7);
  EXPECT_EQ(req.solve.life, "uniform:L=480");
  EXPECT_EQ(req.solve.solver, SolverKind::Guideline);
  EXPECT_FALSE(req.solve.quantize.has_value());

  const auto full = parse_request_line(
      R"({"life":"x","c":2,"solver":"dp","quantize":0.5,"max_periods":3})");
  EXPECT_EQ(full.solve.solver, SolverKind::Dp);
  ASSERT_TRUE(full.solve.quantize.has_value());
  EXPECT_DOUBLE_EQ(*full.solve.quantize, 0.5);
  EXPECT_EQ(full.max_periods, 3u);
}

TEST(WireRequestParse, MissingFieldsThrow) {
  EXPECT_THROW((void)parse_request_line(R"({"c":4})"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line(R"({"life":"uniform:L=480"})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line(R"({"cmd":"reboot"})"),
               std::invalid_argument);
}

// --------------------------------------------------------------- loopback

ServerOptions loopback_options(std::size_t threads = 2) {
  ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.threads = threads;
  return opt;
}

TEST(Csserve, StartsOnEphemeralPortAndStops) {
  Server server(loopback_options());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Csserve, PingPong) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply = client.request(R"({"cmd":"ping","id":3})");
  EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"id\":3"), std::string::npos);
  server.stop();
}

TEST(Csserve, SolveRoundTripCachesAcrossConnections) {
  Server server(loopback_options());
  server.start();
  const std::string line = R"({"id":1,"life":"uniform:L=480","c":4})";

  Client first("127.0.0.1", server.port());
  const std::string cold = first.request(line);
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(cold.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(cold.find("\"solver\":\"guideline\""), std::string::npos);
  EXPECT_NE(cold.find("\"periods\":["), std::string::npos);

  // A different connection hits the same engine cache.
  Client second("127.0.0.1", server.port());
  const std::string warm = second.request(line);
  EXPECT_NE(warm.find("\"cached\":true"), std::string::npos);

  EXPECT_EQ(server.engine().stats().solves, 1u);
  EXPECT_EQ(server.connections_accepted(), 2u);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(Csserve, ErrorResponseKeepsConnectionUsable) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string bad = client.request(R"({"id":9,"life":"bogus:x=1","c":4})");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bad.find("\"id\":9"), std::string::npos);
  EXPECT_NE(bad.find("\"error\":"), std::string::npos);

  const std::string malformed = client.request("{{{");
  EXPECT_NE(malformed.find("\"ok\":false"), std::string::npos);

  // Same connection still serves good requests afterwards.
  const std::string good = client.request(R"({"life":"uniform:L=480","c":4})");
  EXPECT_NE(good.find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(Csserve, StatsCommandReflectsEngineActivity) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  (void)client.request(R"({"life":"uniform:L=480","c":4})");
  (void)client.request(R"({"life":"uniform:L=480","c":4})");
  const std::string stats = client.request(R"({"cmd":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"solves\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"cache_size\":1"), std::string::npos);
  server.stop();
}

TEST(Csserve, MaxPeriodsTruncatesEchoOnly) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply = client.request(
      R"({"life":"uniform:L=480","c":4,"max_periods":2})");
  const auto obj = json::parse_object(reply);
  EXPECT_EQ(obj.at("periods").array.size(), 2u);
  // num_periods still reports the full schedule length.
  EXPECT_GT(obj.at("num_periods").number, 2.0);
  server.stop();
}

TEST(Csserve, ConcurrentClientsCoalesceToOneSolve) {
  Server server(loopback_options(/*threads=*/4));
  server.start();
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      for (int r = 0; r < 16; ++r) {
        const std::string reply = client.request(
            R"({"id":)" + std::to_string(i * 100 + r) +
            R"(,"life":"geomlife:half=100","c":2})");
        if (reply.find("\"ok\":true") != std::string::npos) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 16);
  EXPECT_EQ(server.engine().stats().solves, 1u);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients) * 16);
  server.stop();
}

TEST(Csserve, StopDrainsWhileClientsConnected) {
  Server server(loopback_options());
  server.start();
  Client idle("127.0.0.1", server.port());
  (void)idle.request(R"({"cmd":"ping"})");  // ensure it was accepted
  server.stop();  // must not hang on the still-open connection
  EXPECT_FALSE(server.running());
}

TEST(Csserve, OverlongLineIsRejected) {
  ServerOptions opt = loopback_options();
  opt.max_line = 64;
  Server server(opt);
  server.start();
  Client client("127.0.0.1", server.port());
  // Longer than one 4096-byte read chunk, so the length guard trips before
  // a newline ever arrives.
  const std::string reply =
      client.request(R"({"life":")" + std::string(5000, 'x') + R"(","c":4})");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.find("too long"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace cs::engine
