// Loopback end-to-end tests for the csserve TCP front-end: protocol
// round-trips (v1 and v2), caching across connections, robustness against
// hostile clients (partial frames, oversized frames, slow-loris,
// mid-request disconnects), load shedding, graceful drain, and the
// wire-format parser itself.
#include "engine/server.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <map>

#include "engine/client.hpp"
#include "engine/protocol.hpp"
#include "net/socket.hpp"
#include "obs/span.hpp"

namespace cs::engine {
namespace {

// ------------------------------------------------------------- JSON subset

TEST(WireJson, ParsesFlatObject) {
  const auto obj = json::parse_object(
      R"({"life":"uniform:L=480","c":4,"deep":null,"on":true,"xs":[1,2.5]})");
  EXPECT_EQ(obj.at("life").string, "uniform:L=480");
  EXPECT_DOUBLE_EQ(obj.at("c").number, 4.0);
  EXPECT_EQ(obj.at("deep").type, json::Value::Type::Null);
  EXPECT_TRUE(obj.at("on").boolean);
  ASSERT_EQ(obj.at("xs").array.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.at("xs").array[1], 2.5);
}

TEST(WireJson, ParsesOneLevelOfNestedObject) {
  const auto obj = json::parse_object(
      R"({"ok":false,"error":{"code":"overloaded","retryable":true}})");
  ASSERT_EQ(obj.at("error").type, json::Value::Type::Object);
  const json::Value* code = obj.at("error").get("code");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->string, "overloaded");
  const json::Value* retry = obj.at("error").get("retryable");
  ASSERT_NE(retry, nullptr);
  EXPECT_TRUE(retry->boolean);
  EXPECT_EQ(obj.at("error").get("absent"), nullptr);
}

TEST(WireJson, RejectsOutsideTheSubset) {
  EXPECT_THROW((void)json::parse_object(R"({"a":{"b":{"c":1}}})"),
               std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":["strings"]})"),
               std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":1)"), std::invalid_argument);
  EXPECT_THROW((void)json::parse_object("not json"), std::invalid_argument);
  EXPECT_THROW((void)json::parse_object(R"({"a":1} trailing)"),
               std::invalid_argument);
}

TEST(WireJson, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te";
  const std::string line = "{\"s\":\"" + json::escape(nasty) + "\"}";
  EXPECT_EQ(json::parse_object(line).at("s").string, nasty);
}

TEST(WireRequestParse, SolveDefaultsAndOverrides) {
  const auto req = parse_request_line(
      R"({"id":7,"life":"uniform:L=480","c":4})");
  EXPECT_EQ(req.cmd, WireCommand::Solve);
  EXPECT_EQ(req.version, kProtocolV1);
  ASSERT_TRUE(req.id.has_value());
  EXPECT_EQ(*req.id, 7);
  EXPECT_EQ(req.solve.life, "uniform:L=480");
  EXPECT_EQ(req.solve.solver, SolverKind::Guideline);
  EXPECT_FALSE(req.solve.quantize.has_value());

  const auto full = parse_request_line(
      R"({"life":"x","c":2,"solver":"dp","quantize":0.5,"max_periods":3})");
  EXPECT_EQ(full.solve.solver, SolverKind::Dp);
  ASSERT_TRUE(full.solve.quantize.has_value());
  EXPECT_DOUBLE_EQ(*full.solve.quantize, 0.5);
  EXPECT_EQ(full.max_periods, 3u);
}

TEST(WireRequestParse, VersionFieldSelectsProtocol) {
  const auto v2 = parse_request_line(
      R"({"v":2,"id":1,"life":"uniform:L=480","c":4})");
  EXPECT_EQ(v2.version, kProtocolV2);
  const auto v1 = parse_request_line(
      R"({"v":1,"life":"uniform:L=480","c":4})");
  EXPECT_EQ(v1.version, kProtocolV1);
  EXPECT_THROW(
      (void)parse_request_line(R"({"v":3,"life":"uniform:L=480","c":4})"),
      std::invalid_argument);
}

TEST(WireRequestParse, MissingFieldsThrow) {
  EXPECT_THROW((void)parse_request_line(R"({"c":4})"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line(R"({"life":"uniform:L=480"})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line(R"({"cmd":"reboot"})"),
               std::invalid_argument);
}

TEST(WireRequestParse, TraceLabelAndHealthz) {
  const auto traced = parse_request_line(
      R"({"v":2,"life":"uniform:L=480","c":4,"trace":"run-17"})");
  ASSERT_TRUE(traced.trace.has_value());
  EXPECT_EQ(*traced.trace, "run-17");
  EXPECT_EQ(traced.trace_label(), "run-17");

  // The label is carried but never echoed on v1 frames.
  const auto v1 = parse_request_line(
      R"({"life":"uniform:L=480","c":4,"trace":"run-17"})");
  EXPECT_EQ(v1.trace_label(), "");

  const auto hz = parse_request_line(R"({"v":2,"cmd":"healthz"})");
  EXPECT_EQ(hz.cmd, WireCommand::Health);

  const std::string long_label(65, 'x');
  EXPECT_THROW((void)parse_request_line(
                   R"({"v":2,"cmd":"ping","trace":")" + long_label + "\"}"),
               std::invalid_argument);
}

TEST(WireResponseParse, ErrorRoundTripsBothVersions) {
  const cs::Error shed(cs::ErrorCode::Overloaded, "cap reached");
  const std::string v2_line = make_error_response(kProtocolV2, 42, shed);
  const WireResponse v2 = parse_response_line(v2_line);
  EXPECT_EQ(v2.version, kProtocolV2);
  ASSERT_TRUE(v2.id.has_value());
  EXPECT_EQ(*v2.id, 42);
  EXPECT_FALSE(v2.ok);
  ASSERT_TRUE(v2.error.has_value());
  EXPECT_EQ(v2.error->code, cs::ErrorCode::Overloaded);
  EXPECT_EQ(v2.error->message, "cap reached");
  EXPECT_TRUE(v2.error->retryable);

  // v1 keeps the bare-string error shape; the parser classifies it Internal
  // and non-retryable (the v1 wire carries no taxonomy).
  const std::string v1_line = make_error_response(kProtocolV1, 42, shed);
  EXPECT_EQ(v1_line.find("\"v\":"), std::string::npos);
  EXPECT_NE(v1_line.find("\"error\":\"cap reached\""), std::string::npos);
  const WireResponse v1 = parse_response_line(v1_line);
  EXPECT_EQ(v1.version, kProtocolV1);
  EXPECT_FALSE(v1.ok);
  ASSERT_TRUE(v1.error.has_value());
  EXPECT_EQ(v1.error->code, cs::ErrorCode::Internal);
  EXPECT_EQ(v1.error->message, "cap reached");
  EXPECT_FALSE(v1.error->retryable);
}

// ---------------------------------------------------------------- fixtures

ServerOptions loopback_options(std::size_t threads = 2) {
  ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.threads = threads;
  opt.tick = std::chrono::milliseconds(10);
  return opt;
}

/// Successful request or test failure — keeps the happy-path tests terse.
std::string request_ok(Client& client, const std::string& line) {
  auto response = client.request(line);
  EXPECT_TRUE(response.ok())
      << "request failed: " << (response.ok() ? "" : response.error().describe());
  return response.ok() ? response.value() : std::string();
}

/// A raw socket speaking the protocol byte-by-byte, for tests that need
/// partial frames, abrupt disconnects, or multi-request pipelining that the
/// Client's request/response pairing hides.
class RawConn {
 public:
  RawConn(const std::string& host, std::uint16_t port) {
    auto conn = net::connect_tcp(host, port);
    if (conn.ok()) fd_ = conn.value();
  }
  ~RawConn() { net::close_quietly(fd_); }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void send_all(const std::string& bytes) const {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  /// Read one '\n'-terminated line (stripped); "" on timeout or EOF.
  std::string read_line(int timeout_ms = 5000) {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, timeout_ms) <= 0) return "";
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed its end within timeout_ms.
  bool eof_within(int timeout_ms) const {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[256];
    return ::recv(fd_, chunk, sizeof chunk, 0) == 0;
  }

  void shutdown_write() const { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// --------------------------------------------------------------- loopback

TEST(Csserve, StartsOnEphemeralPortAndStops) {
  Server server(loopback_options());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Csserve, PingPong) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply = request_ok(client, R"({"cmd":"ping","id":3})");
  EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"id\":3"), std::string::npos);
  server.stop();
}

TEST(Csserve, SolveRoundTripCachesAcrossConnections) {
  Server server(loopback_options());
  server.start();
  const std::string line = R"({"id":1,"life":"uniform:L=480","c":4})";

  Client first("127.0.0.1", server.port());
  const std::string cold = request_ok(first, line);
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(cold.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(cold.find("\"solver\":\"guideline\""), std::string::npos);
  EXPECT_NE(cold.find("\"periods\":["), std::string::npos);

  // A different connection hits the same engine cache.
  Client second("127.0.0.1", server.port());
  const std::string warm = request_ok(second, line);
  EXPECT_NE(warm.find("\"cached\":true"), std::string::npos);

  EXPECT_EQ(server.engine().stats().solves, 1u);
  EXPECT_EQ(server.connections_accepted(), 2u);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(Csserve, V1ClientSeesLegacyShapes) {
  // Protocol-v1 compatibility: requests without "v" must keep producing the
  // exact pre-v2 response shapes — no "v" field, bare-string errors.
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string ok = request_ok(
      client, R"({"id":1,"life":"uniform:L=480","c":4,"max_periods":0})");
  EXPECT_EQ(ok.find("\"v\":"), std::string::npos);
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos);

  const std::string err =
      request_ok(client, R"({"id":2,"life":"bogus:x=1","c":4})");
  EXPECT_EQ(err.find("\"v\":"), std::string::npos);
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("\"error\":\""), std::string::npos);  // bare string

  const std::string pong = request_ok(client, R"({"cmd":"ping"})");
  EXPECT_EQ(pong.find("\"v\":"), std::string::npos);
  server.stop();
}

TEST(Csserve, V2RoundTripCarriesVersionAndTaxonomy) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string ok = request_ok(
      client, R"({"v":2,"id":5,"life":"uniform:L=480","c":4,"max_periods":0})");
  EXPECT_EQ(ok.rfind("{\"v\":2,", 0), 0u) << ok;
  const WireResponse parsed_ok = parse_response_line(ok);
  EXPECT_TRUE(parsed_ok.ok);
  EXPECT_EQ(parsed_ok.version, kProtocolV2);
  ASSERT_TRUE(parsed_ok.id.has_value());
  EXPECT_EQ(*parsed_ok.id, 5);

  const std::string err =
      request_ok(client, R"({"v":2,"id":6,"life":"bogus:x=1","c":4})");
  const WireResponse parsed_err = parse_response_line(err);
  EXPECT_FALSE(parsed_err.ok);
  ASSERT_TRUE(parsed_err.error.has_value());
  EXPECT_EQ(parsed_err.error->code, cs::ErrorCode::BadSpec);
  EXPECT_FALSE(parsed_err.error->retryable);

  // v1 and v2 clients interleave on one server without cross-talk.
  Client v1("127.0.0.1", server.port());
  const std::string legacy =
      request_ok(v1, R"({"life":"uniform:L=480","c":4,"max_periods":0})");
  EXPECT_EQ(legacy.find("\"v\":"), std::string::npos);
  server.stop();
}

TEST(Csserve, ErrorResponseKeepsConnectionUsable) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string bad =
      request_ok(client, R"({"id":9,"life":"bogus:x=1","c":4})");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bad.find("\"id\":9"), std::string::npos);
  EXPECT_NE(bad.find("\"error\":"), std::string::npos);

  const std::string malformed = request_ok(client, "{{{");
  EXPECT_NE(malformed.find("\"ok\":false"), std::string::npos);

  // Same connection still serves good requests afterwards.
  const std::string good =
      request_ok(client, R"({"life":"uniform:L=480","c":4})");
  EXPECT_NE(good.find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(Csserve, StatsCommandReflectsEngineActivity) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  (void)client.request(R"({"life":"uniform:L=480","c":4})");
  (void)client.request(R"({"life":"uniform:L=480","c":4})");
  const std::string stats = request_ok(client, R"({"cmd":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"solves\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"cache_size\":1"), std::string::npos);
  server.stop();
}

/// Pin the global span collector's sampling knob for one test and leave the
/// buffer empty on both sides (tests share the process-global collector).
class SpanSamplingGuard {
 public:
  explicit SpanSamplingGuard(std::uint32_t every)
      : saved_(obs::SpanCollector::global().sample_every()) {
    (void)obs::SpanCollector::global().drain();
    obs::SpanCollector::global().set_sample_every(every);
  }
  ~SpanSamplingGuard() {
    (void)obs::SpanCollector::global().drain();
    obs::SpanCollector::global().set_sample_every(saved_);
  }

 private:
  std::uint32_t saved_;
};

TEST(Csserve, HealthzAnswersBothVersions) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string v1 = request_ok(client, R"({"cmd":"healthz"})");
  EXPECT_EQ(v1.find("\"v\":"), std::string::npos);
  EXPECT_NE(v1.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(v1.find("\"uptime_ms\":"), std::string::npos);

  const std::string v2 =
      request_ok(client, R"({"v":2,"id":3,"cmd":"healthz","trace":"hz"})");
  EXPECT_NE(v2.find("\"v\":2"), std::string::npos);
  EXPECT_NE(v2.find("\"trace\":\"hz\""), std::string::npos);
  const auto obj = json::parse_object(v2);  // stays in the wire subset
  EXPECT_TRUE(obj.at("healthy").boolean);
  EXPECT_DOUBLE_EQ(obj.at("inflight").number, 0.0);
  EXPECT_DOUBLE_EQ(obj.at("shed").number, 0.0);
  server.stop();
}

TEST(Csserve, StatsV2SnapshotShape) {
  ServerOptions opt = loopback_options();
  opt.loops = 2;
  Server server(opt);
  server.start();
  Client client("127.0.0.1", server.port());
  (void)client.request(R"({"life":"uniform:L=480","c":4})");
  (void)client.request(R"({"life":"uniform:L=480","c":4})");

  const std::string stats = request_ok(client, R"({"v":2,"id":1,"cmd":"stats"})");
  // The v1 legacy shape is untouched; v2 carries the full plane and stays
  // inside the wire parser's JSON subset (one nesting level, scalar values).
  const auto obj = json::parse_object(stats);
  EXPECT_GE(obj.at("uptime_ms").number, 0.0);
  EXPECT_GE(obj.at("accepted").number, 1.0);
  EXPECT_GE(obj.at("requests").number, 3.0);
  ASSERT_EQ(obj.at("engine").type, json::Value::Type::Object);
  EXPECT_DOUBLE_EQ(obj.at("engine").get("hits")->number, 1.0);
  EXPECT_DOUBLE_EQ(obj.at("engine").get("misses")->number, 1.0);
  EXPECT_DOUBLE_EQ(obj.at("engine").get("cache_size")->number, 1.0);
  ASSERT_EQ(obj.at("spans").type, json::Value::Type::Object);
  EXPECT_NE(obj.at("spans").get("sample_every"), nullptr);
  // One gauge object per loop shard, and the per-shard memo saw the repeat.
  ASSERT_EQ(obj.at("shard0").type, json::Value::Type::Object);
  ASSERT_EQ(obj.at("shard1").type, json::Value::Type::Object);
  double lookups = 0.0;
  for (const char* key : {"shard0", "shard1"})
    lookups += obj.at(key).get("memo_lookups")->number;
  EXPECT_GE(lookups, 2.0);
  server.stop();
}

TEST(Csserve, StatsV2ReflectsLoadGauges) {
  ServerOptions opt = loopback_options();
  opt.loops = 1;
  opt.solve_delay_for_test = std::chrono::milliseconds(150);
  Server server(opt);
  server.start();
  Client holder("127.0.0.1", server.port());
  RawConn slow("127.0.0.1", server.port());
  ASSERT_TRUE(slow.connected());
  // Park one cold request in the workers, then snapshot while it holds its
  // in-flight slot.
  slow.send_all("{\"v\":2,\"id\":1,\"life\":\"uniform:L=481\",\"c\":4}\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string stats =
      request_ok(holder, R"({"v":2,"id":2,"cmd":"stats"})");
  const auto obj = json::parse_object(stats);
  EXPECT_DOUBLE_EQ(obj.at("inflight").number, 1.0);
  EXPECT_DOUBLE_EQ(obj.at("open_conns").number, 2.0);
  EXPECT_DOUBLE_EQ(obj.at("shard0").get("inflight")->number, 1.0);
  EXPECT_DOUBLE_EQ(obj.at("shard0").get("conns")->number, 2.0);
  EXPECT_FALSE(slow.read_line().empty());  // let the solve finish cleanly
  server.stop();
}

TEST(Csserve, TracePropagationRecordsEveryStage) {
  SpanSamplingGuard guard(1);
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());

  // Cold request with a client label; the response echoes it verbatim.
  const std::string cold = request_ok(
      client, R"({"v":2,"id":1,"life":"uniform:L=482","c":4,"trace":"cafe"})");
  EXPECT_NE(cold.find("\"trace\":\"cafe\""), std::string::npos);
  // Warm repeat: loop-side hit, still traced (label forces admission).
  const std::string warm = request_ok(
      client, R"({"v":2,"id":2,"life":"uniform:L=482","c":4,"trace":"cafe"})");
  EXPECT_NE(warm.find("\"trace\":\"cafe\""), std::string::npos);
  EXPECT_NE(warm.find("\"cached\":true"), std::string::npos);
  server.stop();  // joins the loops: every span is recorded by now

  const auto spans = obs::SpanCollector::global().drain();
  const std::uint64_t id = obs::trace_id_from_label("cafe");
  EXPECT_EQ(id, 0xcafeu);  // hex labels parse exactly
  std::map<std::string, std::vector<obs::Span>> by_name;
  for (const auto& s : spans)
    if (s.trace_id == id) by_name[s.name].push_back(s);

  // Both requests produced a full trace: the cold one crossed the worker
  // pool (queue_wait), the warm one was answered on the loop.
  ASSERT_EQ(by_name["request"].size(), 2u);
  ASSERT_EQ(by_name["parse"].size(), 2u);
  ASSERT_EQ(by_name["queue_wait"].size(), 1u);
  ASSERT_EQ(by_name["solve"].size(), 2u);
  ASSERT_EQ(by_name["flush"].size(), 2u);

  // The cold request's stages are monotone and non-overlapping under its
  // root span, and every stage hangs off the root.
  const obs::Span& root = by_name["request"][0];
  EXPECT_EQ(root.tag, "cold");
  EXPECT_EQ(root.parent_id, 0u);
  const obs::Span& parse = by_name["parse"][0];
  const obs::Span& qwait = by_name["queue_wait"][0];
  const obs::Span& solve = by_name["solve"][0];
  const obs::Span& flush = by_name["flush"][0];
  for (const obs::Span* s : {&parse, &qwait, &solve, &flush}) {
    EXPECT_EQ(s->parent_id, root.span_id);
    EXPECT_LE(s->start_ns, s->end_ns);
    EXPECT_GE(s->start_ns, root.start_ns);
    EXPECT_LE(s->end_ns, root.end_ns);
  }
  EXPECT_EQ(solve.tag, "cold");
  EXPECT_LE(parse.end_ns, qwait.start_ns);
  EXPECT_LE(qwait.end_ns, solve.start_ns);
  EXPECT_LE(solve.end_ns, flush.start_ns);
  EXPECT_EQ(root.start_ns, parse.start_ns);
  EXPECT_EQ(root.end_ns, flush.end_ns);

  // The warm hit's solve span carries a hit tag.
  const obs::Span& warm_solve = by_name["solve"][1];
  EXPECT_TRUE(warm_solve.tag == "memo_hit" || warm_solve.tag == "cache_hit")
      << warm_solve.tag;
}

TEST(Csserve, SamplingOffEchoesTraceButRecordsNothing) {
  SpanSamplingGuard guard(0);
  auto& collector = obs::SpanCollector::global();
  const std::uint64_t recorded_before = collector.recorded();

  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply = request_ok(
      client, R"({"v":2,"id":1,"life":"uniform:L=483","c":4,"trace":"off"})");
  // The protocol echo is unconditional; the span machinery never ran.
  EXPECT_NE(reply.find("\"trace\":\"off\""), std::string::npos);
  server.stop();
  EXPECT_EQ(collector.recorded(), recorded_before);
  EXPECT_TRUE(collector.drain().empty());
}

TEST(Csserve, MaxPeriodsTruncatesEchoOnly) {
  Server server(loopback_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply = request_ok(
      client, R"({"life":"uniform:L=480","c":4,"max_periods":2})");
  const auto obj = json::parse_object(reply);
  EXPECT_EQ(obj.at("periods").array.size(), 2u);
  // num_periods still reports the full schedule length.
  EXPECT_GT(obj.at("num_periods").number, 2.0);
  server.stop();
}

TEST(Csserve, ConcurrentClientsCoalesceToOneSolve) {
  Server server(loopback_options(/*threads=*/4));
  server.start();
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      for (int r = 0; r < 16; ++r) {
        const auto reply = client.request(
            R"({"id":)" + std::to_string(i * 100 + r) +
            R"(,"life":"geomlife:half=100","c":2})");
        if (reply.ok() &&
            reply.value().find("\"ok\":true") != std::string::npos)
          ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 16);
  EXPECT_EQ(server.engine().stats().solves, 1u);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients) * 16);
  server.stop();
}

TEST(Csserve, PipelinedBatchAnswersEveryFrameInOrder) {
  // Many frames in one TCP segment: the conn layer delivers them as one
  // batch, the server answers each, in order.
  Server server(loopback_options());
  server.start();
  RawConn raw("127.0.0.1", server.port());
  ASSERT_TRUE(raw.connected());
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += R"({"id":)" + std::to_string(i) +
             R"(,"life":"uniform:L=480","c":4,"max_periods":0})" + "\n";
  }
  raw.send_all(burst);
  for (int i = 0; i < 5; ++i) {
    const std::string line = raw.read_line();
    ASSERT_FALSE(line.empty()) << "missing response " << i;
    EXPECT_NE(line.find("\"id\":" + std::to_string(i)), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  }
  server.stop();
}

TEST(Csserve, PartialFramesAssembleAcrossWrites) {
  Server server(loopback_options());
  server.start();
  RawConn raw("127.0.0.1", server.port());
  ASSERT_TRUE(raw.connected());
  const std::string line = R"({"id":4,"life":"uniform:L=480","c":4})";
  // Trickle the frame in three pieces; no response until the newline lands.
  raw.send_all(line.substr(0, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  raw.send_all(line.substr(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  raw.send_all("\n");
  const std::string reply = raw.read_line();
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"id\":4"), std::string::npos);
  server.stop();
}

TEST(Csserve, OverlongLineIsRejected) {
  ServerOptions opt = loopback_options();
  opt.max_line = 64;
  Server server(opt);
  server.start();
  Client client("127.0.0.1", server.port());
  // Longer than the frame limit, so the guard trips before a newline
  // ever arrives.
  const auto reply =
      client.request(R"({"life":")" + std::string(5000, 'x') + R"(","c":4})");
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.value().find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.value().find("too long"), std::string::npos);
  server.stop();
}

TEST(Csserve, SlowLorisConnectionIsReaped) {
  ServerOptions opt = loopback_options();
  opt.idle_timeout = std::chrono::milliseconds(100);
  Server server(opt);
  server.start();
  RawConn raw("127.0.0.1", server.port());
  ASSERT_TRUE(raw.connected());
  // Trickle bytes of a never-completed frame; partial data must not refresh
  // the idle clock, so the server reaps us.
  raw.send_all(R"({"life":")");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  raw.send_all("xx");
  EXPECT_TRUE(raw.eof_within(2000));
  EXPECT_EQ(server.connections_reaped(), 1u);
  server.stop();
}

TEST(Csserve, MidRequestDisconnectLeavesServerHealthy) {
  ServerOptions opt = loopback_options();
  opt.solve_delay_for_test = std::chrono::milliseconds(50);
  Server server(opt);
  server.start();
  {
    RawConn raw("127.0.0.1", server.port());
    ASSERT_TRUE(raw.connected());
    raw.send_all(R"({"life":"uniform:L=481","c":4})" "\n");
    // Destructor closes the socket while the solve is still running.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // The orphaned completion must not crash or wedge anything.
  Client client("127.0.0.1", server.port());
  const std::string reply =
      request_ok(client, R"({"life":"uniform:L=480","c":4})");
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(Csserve, HalfCloseStillReceivesResponse) {
  // A client that sends a request and immediately shuts down its write side
  // (EOF at the server) must still get the in-flight response.
  ServerOptions opt = loopback_options();
  opt.solve_delay_for_test = std::chrono::milliseconds(50);
  Server server(opt);
  server.start();
  RawConn raw("127.0.0.1", server.port());
  ASSERT_TRUE(raw.connected());
  raw.send_all(R"({"id":8,"life":"uniform:L=482","c":4})" "\n");
  raw.shutdown_write();
  const std::string reply = raw.read_line();
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"id\":8"), std::string::npos);
  server.stop();
}

TEST(Csserve, OverloadShedsWithStructuredRetryableError) {
  ServerOptions opt = loopback_options();
  opt.max_inflight = 1;
  opt.solve_delay_for_test = std::chrono::milliseconds(300);
  Server server(opt);
  server.start();

  // First cold request occupies the only in-flight slot...
  RawConn holder("127.0.0.1", server.port());
  ASSERT_TRUE(holder.connected());
  holder.send_all(R"({"id":1,"life":"uniform:L=483","c":4})" "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so a second cold request is shed immediately — a structured
  // `overloaded` error, not a hang.
  RawConn extra("127.0.0.1", server.port());
  ASSERT_TRUE(extra.connected());
  extra.send_all(R"({"v":2,"id":2,"life":"uniform:L=484","c":4})" "\n");
  const std::string shed = extra.read_line(1000);
  ASSERT_FALSE(shed.empty()) << "shed response must arrive before the solve";
  const WireResponse parsed = parse_response_line(shed);
  EXPECT_FALSE(parsed.ok);
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_EQ(parsed.error->code, cs::ErrorCode::Overloaded);
  EXPECT_TRUE(parsed.error->retryable);
  EXPECT_EQ(server.requests_shed(), 1u);

  // The holder's request still completes.
  const std::string held = holder.read_line();
  EXPECT_NE(held.find("\"ok\":true"), std::string::npos) << held;
  server.stop();
}

TEST(Csserve, RequestDeadlineAnswersTimeoutInsteadOfSolving) {
  ServerOptions opt = loopback_options();
  opt.request_deadline = std::chrono::milliseconds(50);
  opt.solve_delay_for_test = std::chrono::milliseconds(150);
  Server server(opt);
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string reply =
      request_ok(client, R"({"v":2,"id":1,"life":"uniform:L=485","c":4})");
  const WireResponse parsed = parse_response_line(reply);
  EXPECT_FALSE(parsed.ok);
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_EQ(parsed.error->code, cs::ErrorCode::Timeout);
  EXPECT_TRUE(parsed.error->retryable);
  EXPECT_EQ(server.engine().stats().solves, 0u);
  server.stop();
}

TEST(Csserve, ClientRetriesRetryableShedUntilSlotFrees) {
  ServerOptions opt = loopback_options();
  opt.max_inflight = 1;
  opt.solve_delay_for_test = std::chrono::milliseconds(200);
  Server server(opt);
  server.start();

  RawConn holder("127.0.0.1", server.port());
  ASSERT_TRUE(holder.connected());
  holder.send_all(R"({"id":1,"life":"uniform:L=486","c":4})" "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ClientOptions copt;
  copt.max_retries = 10;
  copt.backoff_base = std::chrono::milliseconds(50);
  copt.backoff_max = std::chrono::milliseconds(100);
  copt.jitter_seed = 7;
  Client client("127.0.0.1", server.port(), copt);
  const auto reply =
      client.request(R"({"v":2,"id":2,"life":"uniform:L=487","c":4})");
  ASSERT_TRUE(reply.ok()) << reply.error().describe();
  EXPECT_NE(reply.value().find("\"ok\":true"), std::string::npos)
      << reply.value();
  (void)holder.read_line();
  server.stop();
}

TEST(Csserve, StopDrainsWhileClientsConnected) {
  Server server(loopback_options());
  server.start();
  Client idle("127.0.0.1", server.port());
  (void)idle.request(R"({"cmd":"ping"})");  // ensure it was accepted
  server.stop();  // must not hang on the still-open connection
  EXPECT_FALSE(server.running());
}

TEST(Csserve, StopDeliversInFlightResponsesBeforeClosing) {
  // Graceful drain: a stop() racing an in-flight solve must still deliver
  // that response before the connection closes.
  ServerOptions opt = loopback_options();
  opt.solve_delay_for_test = std::chrono::milliseconds(150);
  Server server(opt);
  server.start();
  RawConn raw("127.0.0.1", server.port());
  ASSERT_TRUE(raw.connected());
  raw.send_all(R"({"id":11,"life":"uniform:L=488","c":4})" "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();  // blocks until drained
  const std::string reply = raw.read_line(1000);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos)
      << "in-flight response lost during drain: '" << reply << "'";
  EXPECT_NE(reply.find("\"id\":11"), std::string::npos);
  EXPECT_TRUE(raw.eof_within(1000));
}

}  // namespace
}  // namespace cs::engine
