// Worst-case (adversarial) extension — preview of the paper's sequel.
#include <cmath>

#include <gtest/gtest.h>

#include "core/worst_case.hpp"

namespace cs {
namespace {

TEST(GuaranteedWork, AdversaryRemovesLargestPeriods) {
  const Schedule s({10.0, 6.0, 4.0});
  const double c = 1.0;
  // Gains: 9, 5, 3 — total 17.
  EXPECT_DOUBLE_EQ(guaranteed_work(s, c, 0), 17.0);
  EXPECT_DOUBLE_EQ(guaranteed_work(s, c, 1), 8.0);   // loses the 9
  EXPECT_DOUBLE_EQ(guaranteed_work(s, c, 2), 3.0);
  EXPECT_DOUBLE_EQ(guaranteed_work(s, c, 3), 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_work(s, c, 5), 0.0);
}

TEST(GuaranteedWork, UnproductivePeriodsCostAdversaryNothing) {
  const Schedule s({0.5, 10.0});
  EXPECT_DOUBLE_EQ(guaranteed_work(s, 1.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_work(s, 1.0, 0), 9.0);
}

TEST(GuaranteedWork, EmptySchedule) {
  EXPECT_DOUBLE_EQ(guaranteed_work(Schedule(), 1.0, 0), 0.0);
}

TEST(OptimalWorstCasePlan, ClosedFormStructure) {
  const double L = 400.0, c = 1.0;
  const std::size_t k = 4;
  const auto plan = optimal_worst_case_plan(L, c, k);
  ASSERT_GT(plan.periods, k);
  EXPECT_NEAR(plan.period_length * static_cast<double>(plan.periods), L,
              1e-9);
  EXPECT_NEAR(plan.guaranteed,
              static_cast<double>(plan.periods - k) * (plan.period_length - c),
              1e-9);
  // Continuous optimum m* = sqrt(kL/c) = 40: integer optimum nearby.
  EXPECT_NEAR(static_cast<double>(plan.periods), worst_case_m_star(L, c, k),
              2.0);
}

TEST(OptimalWorstCasePlan, ExactlyOptimalOverIntegers) {
  const double L = 400.0, c = 1.0;
  const std::size_t k = 4;
  const auto plan = optimal_worst_case_plan(L, c, k);
  for (std::size_t m = k + 1; m <= 400; ++m) {
    const double g = static_cast<double>(m - k) * (L / static_cast<double>(m) - c);
    EXPECT_LE(g, plan.guaranteed + 1e-9) << "m=" << m;
  }
}

TEST(OptimalWorstCasePlan, EqualPeriodsBeatUnequal) {
  // Property: for fixed m and duration, equal periods maximize G_k.
  const double L = 100.0, c = 1.0;
  const std::size_t k = 2;
  const auto plan = optimal_worst_case_plan(L, c, k);
  const Schedule equal =
      Schedule::equal_periods(plan.period_length, plan.periods);
  EXPECT_NEAR(guaranteed_work(equal, c, k), plan.guaranteed, 1e-9);
  // Skew one pair of periods: guaranteed work cannot rise.
  if (plan.periods >= 2) {
    std::vector<double> skew = equal.periods();
    skew[0] += 3.0;
    skew[1] -= 3.0;
    EXPECT_LE(guaranteed_work(Schedule(skew), c, k),
              plan.guaranteed + 1e-9);
  }
}

TEST(OptimalWorstCasePlan, TooManyInterruptsGiveNothing) {
  // If the adversary can kill every admissible period, nothing is
  // guaranteed.
  const auto plan = optimal_worst_case_plan(10.0, 2.0, 5);
  EXPECT_EQ(plan.periods, 0u);
  EXPECT_DOUBLE_EQ(plan.guaranteed, 0.0);
}

TEST(OptimalWorstCasePlan, ZeroInterruptsOnePeriod) {
  // With no interruptions the best plan is a single full-length period.
  const auto plan = optimal_worst_case_plan(100.0, 1.0, 0);
  EXPECT_EQ(plan.periods, 1u);
  EXPECT_DOUBLE_EQ(plan.guaranteed, 99.0);
}

TEST(OptimalWorstCasePlan, ValidatesArguments) {
  EXPECT_THROW((void)optimal_worst_case_plan(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)optimal_worst_case_plan(10.0, 0.0, 1), std::invalid_argument);
}

TEST(WorstCaseMStar, SqrtLaw) {
  EXPECT_DOUBLE_EQ(worst_case_m_star(400.0, 1.0, 4), 40.0);
  EXPECT_DOUBLE_EQ(worst_case_m_star(100.0, 4.0, 1), 5.0);
}

}  // namespace
}  // namespace cs
