// Multi-threaded stress cases whose only job is to give ThreadSanitizer
// real interleavings over the concurrent subsystems: Engine single-flight,
// ShardedLruCache eviction (including hook reentrancy), the metrics
// registry, tracer sinks, solve_many with duplicate keys, and the server's
// ordered shutdown.  The assertions are deliberately loose — invariants
// that must hold under any interleaving — because the point of this binary
// is to run green under `-fsanitize=thread` (ci.sh's tsan stage), not to
// pin exact schedules.
//
// Iteration counts are sized for a small CI box where TSan multiplies
// runtime by 5-15x; bump CS_STRESS_SCALE in the environment to hammer
// harder on bigger machines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "engine/client.hpp"
#include "engine/engine.hpp"
#include "engine/lru_cache.hpp"
#include "engine/server.hpp"
#include "net/conn.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using cs::engine::Engine;
using cs::engine::EngineOptions;
using cs::engine::ResultPtr;
using cs::engine::ShardedLruCache;
using cs::engine::SolveRequest;

/// Multiplier for iteration counts; CS_STRESS_SCALE=10 for a long soak.
std::size_t stress_scale() {
  if (const char* env = std::getenv("CS_STRESS_SCALE")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

void run_threads(std::size_t n, const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads.emplace_back([&body, i] { body(i); });
  for (auto& t : threads) t.join();
}

// ----------------------------------------------------------------- engine

// Many threads race solve() on a handful of keys; single-flight must keep
// solver runs == unique keys while every caller gets a usable result.
TEST(RaceStress, EngineSingleFlightHammer) {
  EngineOptions opt;
  opt.cache_capacity = 64;
  Engine engine(opt);

  const std::vector<std::string> specs = {
      "uniform:L=480", "geomlife:half=100", "uniform:L=960"};
  const std::size_t rounds = 40 * stress_scale();
  std::atomic<std::uint64_t> served{0};

  run_threads(4, [&](std::size_t tid) {
    for (std::size_t i = 0; i < rounds; ++i) {
      SolveRequest req;
      req.life = specs[(tid + i) % specs.size()];
      req.c = 4.0;
      const auto result = engine.solve(req);
      ASSERT_TRUE(result.ok());
      ASSERT_NE(result.value(), nullptr);
      ASSERT_FALSE(result.value()->schedule.periods().empty());
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto stats = engine.stats();
  EXPECT_EQ(served.load(), 4 * rounds);
  EXPECT_EQ(stats.hits + stats.misses, 4 * rounds);
  // Single-flight + cache: each unique key is solved exactly once.
  EXPECT_EQ(stats.solves, specs.size());
}

// solve_many with duplicate keys inside one batch, issued from several
// threads at once: results must be non-null, in order, and key-consistent.
TEST(RaceStress, SolveManyDuplicateKeysConcurrent) {
  Engine engine;

  std::vector<SolveRequest> batch;
  for (int i = 0; i < 12; ++i) {
    SolveRequest req;
    req.life = (i % 2 == 0) ? "uniform:L=480" : "geomlife:half=100";
    req.c = 4.0;
    batch.push_back(req);
  }

  const std::size_t rounds = 5 * stress_scale();
  run_threads(3, [&](std::size_t) {
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto results = engine.solve_many(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok());
        EXPECT_EQ(results[i].value()->canonical_life,
                  results[i % 2].value()->canonical_life);
      }
    }
  });

  // Two unique keys across every batch from every thread.
  EXPECT_EQ(engine.stats().solves, 2u);
}

// ------------------------------------------------------------------ cache

// Tiny capacity + many distinct keys = constant eviction under contention.
TEST(RaceStress, CacheEvictionHammer) {
  ShardedLruCache<int> cache(/*capacity=*/8, /*shards=*/4);
  const std::size_t rounds = 400 * stress_scale();

  run_threads(4, [&](std::size_t tid) {
    for (std::size_t i = 0; i < rounds; ++i) {
      const std::string key =
          "k" + std::to_string(tid) + "-" + std::to_string(i % 37);
      cache.put(key, static_cast<int>(i));
      (void)cache.get(key);
      (void)cache.get("k0-0");
    }
  });

  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.evictions(), 0u);
}

// The eviction hook must be able to reenter the cache (the shard lock is
// released before the hook runs).  Every thread's hook calls size() and
// put() back into the same cache that is evicting.
TEST(RaceStress, EvictionHookReentrancy) {
  ShardedLruCache<int> cache(/*capacity=*/4, /*shards=*/2);
  std::atomic<std::uint64_t> hook_runs{0};
  cache.set_eviction_hook([&cache, &hook_runs] {
    hook_runs.fetch_add(1, std::memory_order_relaxed);
    (void)cache.size();              // reenters every shard's lock
    (void)cache.get("hook-probe");   // reenters one shard's lock
  });

  const std::size_t rounds = 200 * stress_scale();
  run_threads(4, [&](std::size_t tid) {
    for (std::size_t i = 0; i < rounds; ++i)
      cache.put("r" + std::to_string(tid) + "-" + std::to_string(i),
                static_cast<int>(i));
  });

  EXPECT_GT(hook_runs.load(), 0u);
  EXPECT_EQ(hook_runs.load(), cache.evictions());
  EXPECT_LE(cache.size(), cache.capacity());
}

// -------------------------------------------------------------------- obs

// Writers on counters/gauges/histograms racing a reader thread that
// snapshots and serializes the registry.
TEST(RaceStress, MetricsRegistryHammer) {
  cs::obs::Registry registry;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = registry.snapshot();
      (void)snap;
      std::ostringstream os;
      registry.write_json(os);
    }
  });

  const std::size_t rounds = 300 * stress_scale();
  run_threads(4, [&](std::size_t tid) {
    auto& counter = registry.counter("stress.count");
    auto& gauge = registry.gauge("stress.gauge");
    for (std::size_t i = 0; i < rounds; ++i) {
      counter.inc();
      gauge.add(1.0);
      registry.histogram("stress.hist").observe(static_cast<double>(i + 1));
      registry.counter("stress.labeled",
                       "tid=" + std::to_string(tid)).inc();
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(registry.counter("stress.count").value(), 4 * rounds);
  EXPECT_EQ(registry.histogram("stress.hist").count(), 4 * rounds);
}

// Emitters racing drain() and set_station_labels(); the recorded/dropped
// tallies must balance what the drains actually saw.
TEST(RaceStress, TracerEmitWhileDraining) {
  cs::obs::EventTracer tracer(/*shard_capacity=*/64, /*shards=*/4);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};

  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto events = tracer.drain();
      drained.fetch_add(events.size(), std::memory_order_relaxed);
      tracer.set_station_labels({"ws0", "ws1", "ws2", "ws3"});
      (void)tracer.station_label(1);
    }
    drained.fetch_add(tracer.drain().size(), std::memory_order_relaxed);
  });

  const std::size_t rounds = 500 * stress_scale();
  run_threads(4, [&](std::size_t tid) {
    for (std::size_t i = 0; i < rounds; ++i)
      tracer.emit(cs::obs::EventType::PeriodCompleted,
                  static_cast<double>(i), static_cast<std::int32_t>(tid),
                  /*episode=*/0, /*period=*/static_cast<std::uint32_t>(i),
                  /*work=*/1.0);
  });
  done.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_EQ(tracer.recorded(), 4 * rounds);
  EXPECT_EQ(drained.load() + tracer.dropped(), tracer.recorded());
}

// -------------------------------------------------------------------- net

// Many threads hammer post() while the loop also runs a tick and fd
// traffic; every posted task must run exactly once (including stragglers
// posted around stop(), which the final drain picks up).
TEST(RaceStress, EventLoopPostHammer) {
  cs::net::EventLoop loop;
  std::atomic<std::uint64_t> ticks{0};
  loop.set_tick(std::chrono::milliseconds(1),
                [&] { ticks.fetch_add(1, std::memory_order_relaxed); });
  std::thread loop_thread([&] { loop.run(); });

  std::atomic<std::uint64_t> ran{0};
  const std::size_t rounds = 500 * stress_scale();
  run_threads(4, [&](std::size_t) {
    for (std::size_t i = 0; i < rounds; ++i)
      loop.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  });

  loop.stop();
  loop_thread.join();
  EXPECT_EQ(ran.load(), 4 * rounds);
}

// Worker threads post send() completions onto a Conn's loop (the server's
// cross-thread completion path) while the peer drains: every byte arrives,
// no interleaving corrupts the write queue.
TEST(RaceStress, ConnCrossThreadSendHammer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  cs::net::EventLoop loop;
  std::atomic<bool> closed{false};
  cs::net::Conn::Handlers handlers;
  handlers.on_frames = [](std::vector<std::string>&&) {};
  handlers.on_closed = [&] { closed.store(true); };
  auto conn = std::make_unique<cs::net::Conn>(loop, fds[0], cs::net::ConnLimits{},
                                              std::move(handlers));
  std::thread loop_thread([&] { loop.run(); });

  const std::size_t per_thread = 100 * stress_scale();
  const std::string frame(256, 'z');
  std::thread drainer([&] {
    const std::size_t expected = 4 * per_thread * (frame.size() + 1);
    std::size_t got = 0;
    char buf[8192];
    while (got < expected) {
      const ssize_t n = ::recv(fds[1], buf, sizeof buf, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(got, expected);
  });

  run_threads(4, [&](std::size_t) {
    for (std::size_t i = 0; i < per_thread; ++i) {
      loop.post([&conn, &frame] {
        if (!conn->closed()) conn->send(frame);
      });
    }
  });

  drainer.join();
  loop.stop();
  loop_thread.join();
  conn.reset();  // loop joined: teardown cannot race dispatch
  cs::net::close_quietly(fds[1]);
  EXPECT_FALSE(closed.load());
}

// ----------------------------------------------------------------- server

// Clients hammer the server while several threads call stop() at once; the
// drain must be ordered (no worker writes after stop() returns) and every
// stopper must observe the fully-stopped state.
TEST(RaceStress, ServerShutdownConcurrentStoppers) {
  const std::size_t rounds = 3 * stress_scale();
  for (std::size_t round = 0; round < rounds; ++round) {
    cs::engine::ServerOptions opt;
    opt.port = 0;
    opt.threads = 2;
    cs::engine::Server server(opt);
    server.start();
    const std::uint16_t port = server.port();

    std::atomic<bool> quit{false};
    std::vector<std::thread> clients;
    for (int i = 0; i < 2; ++i)
      clients.emplace_back([&quit, port] {
        while (!quit.load(std::memory_order_acquire)) {
          try {
            cs::engine::Client client("127.0.0.1", port);
            (void)client.request(R"({"cmd":"ping"})");
            (void)client.request(R"({"life":"uniform:L=480","c":4})");
          } catch (const std::exception&) {
            return;  // server went away mid-request: expected during stop
          }
        }
      });

    // Let some traffic through, then race three stoppers (mimicking the
    // SIGINT thread, the destructor, and an operator-initiated stop).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    run_threads(3, [&server](std::size_t) { server.stop(); });
    EXPECT_FALSE(server.running());

    quit.store(true, std::memory_order_release);
    for (auto& c : clients) c.join();

    // Post-drain tallies are stable: re-reading them races nothing.
    EXPECT_EQ(server.requests_served(), server.requests_served());
  }
}

// Cold-solve traffic (unique keys, so the worker pool is always busy) racing
// a stop(): the drain must wait for in-flight batches, and late completions
// posting into stopping loops must be harmless.
TEST(RaceStress, ServerStopUnderColdSolveTraffic) {
  const std::size_t rounds = 2 * stress_scale();
  for (std::size_t round = 0; round < rounds; ++round) {
    cs::engine::ServerOptions opt;
    opt.port = 0;
    opt.threads = 2;
    opt.engine.cache_capacity = 8;  // constant eviction, mostly cold
    cs::engine::Server server(opt);
    server.start();
    const std::uint16_t port = server.port();

    std::atomic<bool> quit{false};
    std::atomic<std::uint64_t> serial{0};
    std::vector<std::thread> clients;
    for (int i = 0; i < 3; ++i)
      clients.emplace_back([&quit, &serial, port, round] {
        cs::engine::Client client("127.0.0.1", port);
        while (!quit.load(std::memory_order_acquire)) {
          const std::uint64_t n =
              serial.fetch_add(1, std::memory_order_relaxed);
          (void)client.request(R"({"life":"uniform:L=)" +
                               std::to_string(2000 + round * 100 + (n % 64)) +
                               R"(","c":4})");
        }
      });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.stop();
    EXPECT_FALSE(server.running());
    quit.store(true, std::memory_order_release);
    for (auto& c : clients) c.join();
  }
}

}  // namespace
