// BCLR [3] closed-form optima and the oblivious baselines.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "baselines/oblivious.hpp"
#include "core/dp_reference.hpp"
#include "core/expected_work.hpp"
#include "core/structure.hpp"

namespace cs {
namespace {

// ------------------------------------------------------------ BCLR uniform

TEST(BclrUniform, T0NearSqrtTwoCL) {
  // [3] / eq. (4.5): t0* = sqrt(2cL) + low-order terms.
  for (double L : {120.0, 480.0, 2000.0}) {
    const double c = 4.0;
    const auto r = bclr_uniform_optimal(UniformRisk(L), c);
    EXPECT_NEAR(r.t0, std::sqrt(2.0 * c * L), 0.08 * r.t0) << "L=" << L;
  }
}

TEST(BclrUniform, ArithmeticStructure) {
  const auto r = bclr_uniform_optimal(UniformRisk(480.0), 4.0);
  for (std::size_t i = 1; i < r.schedule.size(); ++i)
    EXPECT_NEAR(r.schedule[i], r.schedule[i - 1] - 4.0, 1e-9);
}

TEST(BclrUniform, PeriodCountNearCorollary53FloorForm) {
  // The floor form counts trailing ~c-length periods that contribute no
  // work; the searched optimum drops them and sits slightly below.
  const double L = 480.0, c = 4.0;
  const auto r = bclr_uniform_optimal(UniformRisk(L), c);
  const auto floor_form = static_cast<std::size_t>(
      std::floor(std::sqrt(2.0 * L / c + 0.25) + 0.5));
  EXPECT_LE(r.schedule.size(), floor_form);
  EXPECT_GE(r.schedule.size() + 3, floor_form);
  EXPECT_LE(r.schedule.size(), cor53_max_periods(L, c));
}

TEST(BclrUniform, BeatsNeighboringParameterChoices) {
  const UniformRisk p(300.0);
  const double c = 2.0;
  const auto r = bclr_uniform_optimal(p, c);
  for (double dt : {-1.0, 1.0}) {
    const Schedule s = Schedule::arithmetic(r.t0 + dt, c, r.periods);
    EXPECT_GE(r.expected + 1e-9, expected_work(s, p, c)) << "dt=" << dt;
  }
  for (int dm : {-1, 1}) {
    const auto m = static_cast<std::size_t>(
        std::max<int>(1, static_cast<int>(r.periods) + dm));
    const Schedule s = Schedule::arithmetic(r.t0, c, m);
    EXPECT_GE(r.expected + 1e-9, expected_work(s, p, c)) << "dm=" << dm;
  }
}

TEST(BclrUniform, ValidatesArguments) {
  EXPECT_THROW(bclr_uniform_optimal(UniformRisk(10.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(bclr_uniform_optimal(UniformRisk(10.0), 15.0),
               std::invalid_argument);
}

// ----------------------------------------------------------- BCLR geomlife

TEST(BclrGeomlife, TStarSolvesDefiningEquation) {
  for (double a : {1.01, 1.05, 1.3}) {
    const GeometricLifespan p(a);
    const double c = 1.0;
    const double t = bclr_geomlife_tstar(p, c);
    EXPECT_NEAR(t + std::pow(a, -t) / p.ln_a(), c + 1.0 / p.ln_a(), 1e-10)
        << "a=" << a;
    EXPECT_GT(t, c);
    EXPECT_LT(t, c + 1.0 / p.ln_a());
  }
}

TEST(BclrGeomlife, ClosedFormMatchesScheduleSum) {
  const GeometricLifespan p(1.05);
  const double c = 1.0;
  const auto r = bclr_geometric_lifespan_optimal(p, c);
  EXPECT_NEAR(expected_work(r.schedule, p, c), r.expected,
              1e-9 * r.expected + 1e-9);
}

TEST(BclrGeomlife, EqualPeriods) {
  const auto r = bclr_geometric_lifespan_optimal(GeometricLifespan(1.1), 2.0);
  ASSERT_GE(r.schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(r.schedule[0], r.schedule[1]);
}

TEST(BclrGeomlife, BeatsOtherEqualPeriodChoices) {
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto r = bclr_geometric_lifespan_optimal(p, c);
  for (double t : {r.t0 * 0.8, r.t0 * 1.2, r.t0 + 5.0}) {
    const double q = p.survival(t);
    const double e = (t - c) * q / (1.0 - q);
    EXPECT_LE(e, r.expected + 1e-9) << "t=" << t;
  }
}

// ----------------------------------------------------------- BCLR geomrisk

TEST(BclrGeomrisk, RecurrenceShape) {
  const GeometricRisk p(40.0);
  const double c = 1.0;
  const Schedule s = bclr_geomrisk_expand(p, c, 30.0);
  ASSERT_GE(s.size(), 2u);
  for (std::size_t k = 1; k < s.size(); ++k)
    EXPECT_NEAR(s[k], std::log2(s[k - 1] - c + 2.0), 1e-10);
}

TEST(BclrGeomrisk, OptimalCloseToDp) {
  const GeometricRisk p(40.0);
  const double c = 1.0;
  const auto r = bclr_geometric_risk_optimal(p, c);
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(p, c, opt);
  EXPECT_GE(r.expected, 0.98 * dp.expected);
}

TEST(BclrGeomrisk, ValidatesArguments) {
  const GeometricRisk p(20.0);
  EXPECT_THROW(bclr_geomrisk_expand(p, 5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(bclr_geometric_risk_optimal(p, 25.0), std::invalid_argument);
}

// ------------------------------------------------------------- oblivious

TEST(FixedChunk, CoversHorizon) {
  const UniformRisk p(100.0);
  const Schedule s = fixed_chunk_schedule(p, 1.0, 7.0);
  EXPECT_GE(s.total_duration(), 100.0 - 1e-9);
  EXPECT_DOUBLE_EQ(s[0], 7.0);
  EXPECT_THROW(fixed_chunk_schedule(p, 1.0, 0.0), std::invalid_argument);
}

TEST(BestFixedChunk, BeatsArbitraryFixedChoices) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto best = best_fixed_chunk(p, c);
  for (double t : {10.0, 30.0, 60.0, 120.0}) {
    const double e = expected_work(fixed_chunk_schedule(p, c, t), p, c);
    EXPECT_LE(e, best.expected + 1e-6) << "t=" << t;
  }
}

TEST(BestFixedChunk, GeomlifeRecoversEqualPeriodOptimum) {
  // For memoryless p the best fixed chunk IS the global optimum.
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto best = best_fixed_chunk(p, c);
  const auto bclr = bclr_geometric_lifespan_optimal(p, c);
  EXPECT_NEAR(best.expected, bclr.expected, 1e-3 * bclr.expected);
  EXPECT_NEAR(best.parameter, bclr.t0, 0.02 * bclr.t0);
}

TEST(AllAtOnce, SinglePeriodSizedToMean) {
  const UniformRisk p(100.0);
  const auto r = all_at_once(p, 1.0);
  EXPECT_EQ(r.schedule.size(), 1u);
  EXPECT_NEAR(r.schedule[0], 50.0, 1e-6);
  EXPECT_NEAR(r.expected, 49.0 * 0.5, 1e-6);
}

TEST(DoublingChunks, GeometricGrowth) {
  const UniformRisk p(1000.0);
  const auto r = doubling_chunks(p, 2.0);
  ASSERT_GE(r.schedule.size(), 3u);
  EXPECT_DOUBLE_EQ(r.schedule[0], 4.0);
  EXPECT_DOUBLE_EQ(r.schedule[1], 8.0);
  EXPECT_DOUBLE_EQ(r.schedule[2], 16.0);
  EXPECT_GE(r.schedule.total_duration(), 1000.0);
}

TEST(DoublingChunks, CustomBase) {
  const UniformRisk p(100.0);
  const auto r = doubling_chunks(p, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(r.schedule[0], 3.0);
  EXPECT_DOUBLE_EQ(r.schedule[1], 6.0);
}

TEST(Oblivious, RankingOnUniformRisk) {
  // best-fixed > doubling and best-fixed > all-at-once on bounded uniform
  // risk (the motivating gap of the paper's introduction).
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto fixed = best_fixed_chunk(p, c);
  const auto dbl = doubling_chunks(p, c);
  const auto once = all_at_once(p, c);
  EXPECT_GT(fixed.expected, dbl.expected);
  EXPECT_GT(fixed.expected, once.expected);
}

}  // namespace
}  // namespace cs
