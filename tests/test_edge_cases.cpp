// Cross-cutting edge cases and failure injection: degenerate parameters,
// boundary regimes, and inputs at the edges of each module's contract.
#include <cmath>

#include <gtest/gtest.h>

#include "cyclesteal/cyclesteal.hpp"

namespace cs {
namespace {

// ---- overhead at the edge of feasibility -----------------------------------

TEST(EdgeCases, OverheadNearlyConsumesLifespan) {
  // c = 0.45 L: at most one productive chunk fits; guideline must still
  // produce a sane single-period schedule.
  const UniformRisk p(10.0);
  const double c = 4.5;
  const auto g = GuidelineScheduler(p, c).run();
  ASSERT_EQ(g.schedule.size(), 1u);
  EXPECT_GT(g.expected, 0.0);
  const auto dp = dp_reference(p, c, {.grid_points = 2048});
  EXPECT_GE(g.expected, 0.98 * dp.expected);
}

TEST(EdgeCases, OverheadExceedsLifespan) {
  const UniformRisk p(5.0);
  const auto dp = dp_reference(p, 6.0, {.grid_points = 512});
  EXPECT_TRUE(dp.schedule.empty());
  const auto wc = optimal_worst_case_plan(5.0, 6.0, 0);
  EXPECT_EQ(wc.periods, 0u);
}

TEST(EdgeCases, TinyOverheadManyPeriods) {
  const UniformRisk p(100.0);
  const double c = 0.01;
  const auto g = GuidelineScheduler(p, c).run();
  // t0 ~ sqrt(2cL) ~ 1.4, m ~ sqrt(2L/c) ~ 141.
  EXPECT_GT(g.schedule.size(), 100u);
  EXPECT_LT(g.schedule.size(), 200u);
  // E approaches L/2 - overhead costs ~ sqrt(2cL)... at least 0.9 * L/2.
  EXPECT_GT(g.expected, 0.9 * 50.0);
}

// ---- extreme life-function parameters --------------------------------------

TEST(EdgeCases, VeryShortLifespan) {
  const UniformRisk p(0.1);
  const auto g = GuidelineScheduler(p, 0.01).run();
  EXPECT_GT(g.expected, 0.0);
  EXPECT_LE(g.schedule.total_duration(), 0.1 + 1e-9);
}

TEST(EdgeCases, VeryLargeLifespan) {
  const UniformRisk p(1e7);
  const auto g = GuidelineScheduler(p, 1.0).run();
  EXPECT_NEAR(g.chosen_t0, std::sqrt(2.0 * 1e7), 0.1 * std::sqrt(2.0 * 1e7));
  EXPECT_GT(g.expected, 0.0);
}

TEST(EdgeCases, NearlyImmortalWorkstation) {
  // a barely above 1: essentially no risk over any reasonable span.
  const GeometricLifespan p(1.0 + 1e-7);
  const auto bracket = guideline_t0_bracket(p, 1.0);
  // Optimal chunk ~ sqrt(c/ln a) ~ 3163; bracket must be consistent.
  EXPECT_GT(bracket.lower, 1000.0);
  EXPECT_GE(bracket.upper, bracket.lower);
}

TEST(EdgeCases, ExtremelyRiskyWorkstation) {
  // Half-life shorter than the overhead: stealing is near-hopeless but must
  // not crash; E is tiny but nonnegative.
  const auto p = GeometricLifespan::from_half_life(0.5);
  const double c = 2.0;
  const auto g = GuidelineScheduler(p, c).run();
  EXPECT_GE(g.expected, 0.0);
  EXPECT_LT(g.expected, 1.0);
}

// ---- schedules at contract boundaries --------------------------------------

TEST(EdgeCases, ExpectedWorkWithZeroOverhead) {
  // c = 0 is allowed by expected_work (the model's degenerate frictionless
  // case): every period contributes fully.
  const UniformRisk p(10.0);
  EXPECT_NEAR(expected_work(Schedule({5.0}), p, 0.0), 5.0 * 0.5, 1e-12);
}

TEST(EdgeCases, SinglePeriodExactlyC) {
  const UniformRisk p(10.0);
  EXPECT_DOUBLE_EQ(expected_work(Schedule({2.0}), p, 2.0), 0.0);
  EXPECT_TRUE(canonicalize(Schedule({2.0}), 2.0).empty());
}

TEST(EdgeCases, ReclaimSamplerAtDistributionEdges) {
  const UniformRisk p(50.0);
  EXPECT_DOUBLE_EQ(p.inverse_survival(1.0), 0.0);
  EXPECT_NEAR(p.inverse_survival(1e-15), 50.0, 1e-9);
}

// ---- farm degenerate configurations ----------------------------------------

TEST(EdgeCases, FarmWithZeroTasksCompletesInstantly) {
  const UniformRisk life(100.0);
  auto stations = sim::homogeneous_farm(2, life, 1.0, 10.0);
  sim::FarmOptions opt;
  opt.task_count = 0;
  const auto policy = sim::make_guideline_policy();
  const auto r = sim::run_farm(stations, *policy, opt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_done, 0u);
}

TEST(EdgeCases, FarmSingleStationSingleTask) {
  const UniformRisk life(100.0);
  auto stations = sim::homogeneous_farm(1, life, 1.0, 10.0);
  sim::FarmOptions opt;
  opt.task_count = 1;
  opt.profile = {.kind = sim::TaskProfile::Kind::Fixed, .mean = 2.0};
  opt.seed = 11;
  const auto policy = sim::make_guideline_policy();
  const auto r = sim::run_farm(stations, *policy, opt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_done, 1u);
  EXPECT_NEAR(r.work_done, 2.0, 1e-9);
}

// ---- trace pipeline degenerate samples -------------------------------------

TEST(EdgeCases, EstimatorWithIdenticalGaps) {
  // All gaps equal: the survival curve is a single cliff; the estimator
  // must still produce a monotone function with the right median scale.
  std::vector<double> gaps(64, 10.0);
  const auto fn = trace::estimate_life_function_from_gaps(gaps);
  EXPECT_GT(fn->survival(9.0), 0.5);
  EXPECT_LT(fn->survival(11.0), 0.2);
  EXPECT_TRUE(fn->is_monotone_nonincreasing());
}

TEST(EdgeCases, FitterWithTwoDistinctValues) {
  std::vector<double> gaps;
  for (int i = 0; i < 50; ++i) gaps.push_back(i % 2 ? 5.0 : 15.0);
  // All fitters must return finite models without throwing.
  const auto fits = trace::fit_all_families(gaps);
  for (const auto& f : fits) {
    EXPECT_TRUE(std::isfinite(f.ks_distance)) << f.family;
    EXPECT_LE(f.ks_distance, 1.0) << f.family;
  }
}

// ---- quantization extremes --------------------------------------------------

TEST(EdgeCases, QuantizeWithGiantTasks) {
  // Tasks bigger than any period: everything drops.
  const UniformRisk p(100.0);
  const auto g = GuidelineScheduler(p, 2.0).run();
  const auto q =
      quantize_schedule(g.schedule, p, 2.0, 500.0, QuantizeRule::Floor);
  EXPECT_TRUE(q.schedule.empty());
  EXPECT_DOUBLE_EQ(q.expected, 0.0);
}

TEST(EdgeCases, AdaptiveOnVeryShortEpisode) {
  const UniformRisk p(3.0);
  const auto r = adaptive_schedule(p, 1.0);
  EXPECT_LE(r.schedule.total_duration(), 3.0 + 1e-9);
  EXPECT_GE(r.expected, 0.0);
}

}  // namespace
}  // namespace cs
