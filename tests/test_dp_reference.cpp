// The grid-DP reference optimizer and the coordinate-ascent polish.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "core/dp_reference.hpp"
#include "core/expected_work.hpp"
#include "core/recurrence.hpp"
#include "core/structure.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(DpReference, RecoversBclrUniformOptimum) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(p, c, opt);
  const auto bclr = bclr_uniform_optimal(p, c);
  EXPECT_NEAR(dp.expected, bclr.expected, 1e-3 * bclr.expected);
  EXPECT_NEAR(dp.schedule[0], bclr.t0, 0.05 * bclr.t0);
}

TEST(DpReference, RecoversBclrGeometricLifespanOptimum) {
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  DpOptions opt;
  opt.grid_points = 8192;
  const auto dp = dp_reference(p, c, opt);
  const auto bclr = bclr_geometric_lifespan_optimal(p, c);
  // DP truncates the infinite tail at p < p_floor; still within 1%.
  EXPECT_NEAR(dp.expected, bclr.expected, 0.01 * bclr.expected);
}

TEST(DpReference, GridValueLowerBoundsPolished) {
  const PolynomialRisk p(2, 300.0);
  DpOptions opt;
  opt.grid_points = 1024;
  const auto dp = dp_reference(p, 2.0, opt);
  EXPECT_GE(dp.expected, dp.grid_value - 1e-9);
}

TEST(DpReference, PolishImprovesCoarseGrid) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  DpOptions coarse;
  coarse.grid_points = 128;
  coarse.polish = false;
  DpOptions coarse_polished;
  coarse_polished.grid_points = 128;
  coarse_polished.polish = true;
  const auto raw = dp_reference(p, c, coarse);
  const auto polished = dp_reference(p, c, coarse_polished);
  EXPECT_GT(polished.expected, raw.expected);
  const auto bclr = bclr_uniform_optimal(p, c);
  EXPECT_NEAR(polished.expected, bclr.expected, 1e-3 * bclr.expected);
}

TEST(DpReference, OptimalScheduleSatisfiesRecurrence) {
  // A (continuous) optimum must satisfy system (3.6) — check the polished DP
  // schedule's residuals are small (Corollary 3.1 as a *diagnostic*).
  const PolynomialRisk p(3, 400.0);
  const double c = 2.0;
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(p, c, opt);
  const RecurrenceEngine eng(p, c);
  const auto res = eng.residuals(dp.schedule);
  for (std::size_t k = 0; k < res.size(); ++k)
    EXPECT_NEAR(res[k], 0.0, 5e-3) << "k=" << k;
}

TEST(DpReference, EmptyWhenOverheadExceedsHorizon) {
  const UniformRisk p(5.0);
  const auto dp = dp_reference(p, 10.0, {.grid_points = 256});
  EXPECT_TRUE(dp.schedule.empty());
  EXPECT_DOUBLE_EQ(dp.expected, 0.0);
}

TEST(DpReference, ValidatesArguments) {
  const UniformRisk p(100.0);
  EXPECT_THROW(dp_reference(p, 0.0), std::invalid_argument);
  EXPECT_THROW(dp_reference(p, 1.0, {.grid_points = 1}),
               std::invalid_argument);
}

TEST(DpReference, HorizonMatchesLifeFunction) {
  const UniformRisk p(77.0);
  const auto dp = dp_reference(p, 1.0, {.grid_points = 256});
  EXPECT_DOUBLE_EQ(dp.horizon, 77.0);
}

TEST(PolishSchedule, FixesDeliberatelyBadSchedule) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const Schedule bad = Schedule::equal_periods(120.0, 4);
  const auto out = polish_schedule(bad, p, c);
  EXPECT_GT(out.expected, expected_work(bad, p, c));
  EXPECT_GT(out.sweeps_used, 0);
}

TEST(PolishSchedule, LeavesOptimumNearlyUnchanged) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto bclr = bclr_uniform_optimal(p, c);
  const auto out = polish_schedule(bclr.schedule, p, c);
  EXPECT_NEAR(out.expected, bclr.expected, 1e-6 * bclr.expected);
}

TEST(PolishSchedule, EmptyInputSafe) {
  const UniformRisk p(100.0);
  const auto out = polish_schedule(Schedule(), p, 1.0);
  EXPECT_TRUE(out.schedule.empty());
  EXPECT_DOUBLE_EQ(out.expected, 0.0);
}

// Property: DP (with polish) is a valid upper reference — no other strategy
// in the library beats it beyond tolerance; and its schedule obeys the
// Theorem 5.2 structure on shaped families.
struct DpCase {
  const char* spec;
  double c;
  bool concave;  // true: check decrement; false: check growth (convex)
};

class DpStructure : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpStructure, Theorem52StructureHolds) {
  const auto p = make_life_function(GetParam().spec);
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(*p, GetParam().c, opt);
  ASSERT_GE(dp.schedule.size(), 2u);
  if (GetParam().concave) {
    const auto chk = check_concave_decrement(dp.schedule, GetParam().c, 1e-2);
    EXPECT_TRUE(chk.holds) << "violation " << chk.violation << " at "
                           << chk.violating_index;
  } else {
    const auto chk = check_convex_growth(dp.schedule, GetParam().c, 1e-2);
    EXPECT_TRUE(chk.holds) << "violation " << chk.violation << " at "
                           << chk.violating_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpStructure,
    ::testing::Values(DpCase{"uniform:L=480", 4.0, true},
                      DpCase{"polyrisk:d=2,L=300", 2.0, true},
                      DpCase{"polyrisk:d=4,L=300", 2.0, true},
                      DpCase{"geomrisk:L=40", 1.0, true},
                      DpCase{"geomlife:a=1.02", 1.0, false},
                      DpCase{"geomlife:a=1.1", 1.0, false}));

}  // namespace
}  // namespace cs
