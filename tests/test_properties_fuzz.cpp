// Randomized cross-module property tests: dominance and invariance
// relations that must hold for *every* schedule, probed with thousands of
// random ones.
#include <cmath>

#include <gtest/gtest.h>

#include "core/dp_reference.hpp"
#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "lifefn/factory.hpp"
#include "numerics/rng.hpp"
#include "sim/episode.hpp"

namespace cs {
namespace {

Schedule random_schedule(num::RandomStream& rng, double horizon) {
  const auto m = 1 + rng.below(12);
  std::vector<double> periods;
  for (std::uint64_t i = 0; i < m; ++i)
    periods.push_back(rng.uniform(0.05, horizon / 2.0));
  return Schedule(std::move(periods));
}

struct FuzzCase {
  const char* spec;
  double c;
};

class RandomScheduleProperties : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RandomScheduleProperties, DpReferenceDominatesEverything) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  DpOptions opt;
  opt.grid_points = 2048;
  const double dp = dp_reference(*p, c, opt).expected;
  const double horizon = p->horizon(1e-9);
  num::RandomStream rng(0xF00D);
  for (int trial = 0; trial < 500; ++trial) {
    const Schedule s = random_schedule(rng, horizon);
    EXPECT_LE(expected_work(s, *p, c), dp * (1.0 + 1e-6))
        << s.to_string() << " trial " << trial;
  }
}

TEST_P(RandomScheduleProperties, CanonicalizeNeverHurts) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const double horizon = p->horizon(1e-9);
  num::RandomStream rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const Schedule s = random_schedule(rng, horizon);
    const Schedule canon = canonicalize(s, c);
    EXPECT_GE(expected_work(canon, *p, c) + 1e-12,
              expected_work(s, *p, c))
        << s.to_string();
    EXPECT_TRUE(is_productive(canon, c));
  }
}

TEST_P(RandomScheduleProperties, PolishNeverHurts) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const double horizon = p->horizon(1e-9);
  num::RandomStream rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    const Schedule s = random_schedule(rng, horizon);
    const auto polished = polish_schedule(s, *p, c, 10);
    EXPECT_GE(polished.expected + 1e-12, expected_work(s, *p, c))
        << s.to_string();
  }
}

TEST_P(RandomScheduleProperties, ExpectedWorkBoundedByMeanLifespan) {
  // E(S;p) <= E[R]: work cannot exceed the expected availability.
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const double mean = p->mean_lifespan();
  const double horizon = p->horizon(1e-9);
  num::RandomStream rng(0xD1CE);
  for (int trial = 0; trial < 500; ++trial) {
    const Schedule s = random_schedule(rng, horizon);
    EXPECT_LE(expected_work(s, *p, c), mean + 1e-9) << s.to_string();
  }
}

TEST_P(RandomScheduleProperties, WorkGivenReclaimIsMonotoneStep) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const double horizon = p->horizon(1e-9);
  num::RandomStream rng(0xABBA);
  for (int trial = 0; trial < 100; ++trial) {
    const Schedule s = random_schedule(rng, horizon);
    double prev = -1.0;
    for (int i = 0; i <= 60; ++i) {
      const double r = s.total_duration() * i / 50.0;  // past the end too
      const double w = work_given_reclaim(s, c, r);
      EXPECT_GE(w, prev);
      prev = w;
    }
    // Expectation identity against the episode simulator's replay.
    const double r_mid = 0.5 * s.total_duration();
    EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, r_mid),
                     sim::run_episode(s, c, r_mid).work);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomScheduleProperties,
    ::testing::Values(FuzzCase{"uniform:L=60", 1.0},
                      FuzzCase{"polyrisk:d=2,L=80", 2.0},
                      FuzzCase{"geomrisk:L=25", 0.7},
                      FuzzCase{"geomlife:a=1.1", 0.5},
                      FuzzCase{"weibull:k=1.5,scale=30", 1.0}));

}  // namespace
}  // namespace cs
