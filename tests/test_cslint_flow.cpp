// Tests for cslint v2's flow-aware layer: tokenizer, structural parser,
// the four rule families (thread-affinity, must-use, lock-order,
// blocking-in-loop), suppression/baseline handling, SARIF output, and the
// incremental include-closure cache.  Every rule family has at least one
// fixture that FAILS without its implementation (positive case) and one
// that must stay silent (negative case).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "cslint.hpp"
#include "flow.hpp"
#include "sarif.hpp"
#include "token.hpp"

namespace fs = std::filesystem;
using cs::lint::Baseline;
using cs::lint::FlowAnalyzer;
using cs::lint::FlowOptions;
using cs::lint::HeaderCache;
using cs::lint::IncludeHasher;
using cs::lint::Tok;
using cs::lint::Violation;

namespace {

std::vector<Violation> flow(std::string_view src,
                            const FlowOptions& opt = {}) {
  return cs::lint::lint_flow("fix.cpp", src, opt);
}

std::size_t count_rule(const std::vector<Violation>& vs,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

const Violation& first(const std::vector<Violation>& vs,
                       std::string_view rule) {
  const auto it =
      std::find_if(vs.begin(), vs.end(),
                   [&](const Violation& v) { return v.rule == rule; });
  EXPECT_NE(it, vs.end()) << "no violation for rule " << rule;
  return *it;
}

/// Temp directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("cslint_flow_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path file(const std::string& name, const std::string& content) const {
    const fs::path p = path / name;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
    return p;
  }
};

}  // namespace

// ---------------------------------------------------------------- tokenizer

TEST(CslintToken, BasicKindsAndLines) {
  const auto toks = cs::lint::tokenize("int x = 42;\n// note\nfoo->bar();\n");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[3].kind, Tok::Number);
  // The comment is a token with its text preserved, on line 2.
  const auto comment = std::find_if(
      toks.begin(), toks.end(),
      [](const cs::lint::Token& t) { return t.kind == Tok::Comment; });
  ASSERT_NE(comment, toks.end());
  EXPECT_NE(comment->text.find("note"), std::string::npos);
  EXPECT_EQ(comment->line, 2u);
  // '->' is one punct token.
  const auto arrow = std::find_if(
      toks.begin(), toks.end(),
      [](const cs::lint::Token& t) { return t.text == "->"; });
  ASSERT_NE(arrow, toks.end());
  EXPECT_EQ(arrow->line, 3u);
}

TEST(CslintToken, StringContentsDroppedRawStringsIncluded) {
  const auto toks =
      cs::lint::tokenize("auto s = \"lock(m)\"; auto r = R\"x(lock(m))x\";");
  for (const auto& t : toks) {
    if (t.kind == Tok::Str) {
      EXPECT_EQ(t.text, "\"\"");
    }
    EXPECT_NE(t.text, "lock");  // nothing leaked out of the literals
  }
}

TEST(CslintToken, PreprocFoldsContinuations) {
  const auto toks =
      cs::lint::tokenize("#define M(a) \\\n  (a + 1)\nint y;\n");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, Tok::Preproc);
  EXPECT_NE(toks[0].text.find("define"), std::string::npos);
  // The `int` after the directive is on line 3.
  const auto ident = std::find_if(
      toks.begin(), toks.end(),
      [](const cs::lint::Token& t) { return t.text == "int"; });
  ASSERT_NE(ident, toks.end());
  EXPECT_EQ(ident->line, 3u);
}

// ------------------------------------------------------------------- parser

TEST(CslintParse, RecoversFunctionsMethodsAndMembers) {
  const auto model = cs::lint::parse_file_model("m.cpp", R"(
namespace app {
class Widget {
 public:
  void poke();
  int size_ = 0;
};
void Widget::poke() { helper(); }
void helper() {}
}  // namespace app
)");
  // Declaration + definition of poke, plus helper.
  std::size_t poke = 0, helper = 0;
  for (const auto& ctx : model.contexts) {
    if (ctx.simple == "poke") ++poke;
    if (ctx.simple == "helper") ++helper;
  }
  EXPECT_EQ(poke, 2u);
  EXPECT_GE(helper, 1u);
  ASSERT_EQ(model.members.count("Widget"), 1u);
  EXPECT_EQ(model.members.at("Widget").count("size_"), 1u);
  // The qualified definition knows its class.
  for (const auto& ctx : model.contexts) {
    if (ctx.simple == "poke" && ctx.defined) {
      EXPECT_EQ(ctx.class_name, "Widget");
      ASSERT_EQ(ctx.calls.size(), 1u);
      EXPECT_EQ(ctx.calls[0].callee, "helper");
    }
  }
}

TEST(CslintParse, AffinityAnnotationBindsToDeclaration) {
  const auto model = cs::lint::parse_file_model("m.hpp", R"(
class Loop {
 public:
  // cs: affinity(loop)
  void add(int fd);
  void post(int t);
};
)");
  bool saw_add = false, saw_post = false;
  for (const auto& ctx : model.contexts) {
    if (ctx.simple == "add") {
      saw_add = true;
      EXPECT_TRUE(ctx.loop_affine);
    }
    if (ctx.simple == "post") {
      saw_post = true;
      EXPECT_FALSE(ctx.loop_affine);
    }
  }
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(saw_post);
}

// ---------------------------------------------------------- thread-affinity

namespace {

/// Miniature of the real seed: an annotated EventLoop/Conn pair.  The
/// positive fixture calls conn->send() from a non-affine function — exactly
/// the "moved off-loop" mistake the acceptance criteria require cslint to
/// catch statically (EventLoop::assert_on_loop_thread catches it at
/// runtime).
constexpr const char* kLoopHeader = R"(
namespace cs::net {
class EventLoop {
 public:
  // cs: affinity(loop)
  void add(int fd);
  // cs: affinity(loop)
  void remove(int fd);
  void post(int task);
};
class Conn {
 public:
  // cs: affinity(loop)
  void send(int frame);
  // cs: affinity(loop)
  void close();
};
}  // namespace cs::net
)";

}  // namespace

TEST(CslintAffinity, OffLoopConnSendIsCaught) {
  FlowAnalyzer fa;
  fa.add_source("net.hpp", kLoopHeader);
  fa.add_source("srv.cpp", R"(
namespace cs::engine {
struct Srv {
  cs::net::Conn* conn;
  void off_loop_reply();
};
void Srv::off_loop_reply() {
  conn->send(1);
}
}  // namespace cs::engine
)");
  const auto vs = fa.run();
  ASSERT_EQ(count_rule(vs, "thread-affinity"), 1u);
  const Violation& v = first(vs, "thread-affinity");
  EXPECT_EQ(v.file, "srv.cpp");
  EXPECT_NE(v.message.find("Conn::send"), std::string::npos);
}

TEST(CslintAffinity, PostLambdaAndAffineCallersAreClean) {
  FlowAnalyzer fa;
  fa.add_source("net.hpp", kLoopHeader);
  fa.add_source("srv.cpp", R"(
namespace cs::engine {
struct Srv {
  cs::net::Conn* conn;
  cs::net::EventLoop* loop;
  // cs: affinity(loop)
  void on_loop_reply();
  void any_thread_reply();
};
void Srv::on_loop_reply() {
  conn->send(1);            // affine caller: fine
}
void Srv::any_thread_reply() {
  loop->post([this] { conn->send(2); });  // post lambda: fine
}
}  // namespace cs::engine
)");
  EXPECT_EQ(count_rule(fa.run(), "thread-affinity"), 0u);
}

TEST(CslintAffinity, CppDefinitionInheritsHeaderAnnotation) {
  // The .cpp body of an annotated method may call other affine methods.
  FlowAnalyzer fa;
  fa.add_source("net.hpp", kLoopHeader);
  fa.add_source("conn.cpp", R"(
namespace cs::net {
void Conn::close() {
  send(0);  // affine-to-affine via the header annotation on close()
}
}  // namespace cs::net
)");
  EXPECT_EQ(count_rule(fa.run(), "thread-affinity"), 0u);
}

// ----------------------------------------------------------------- must-use

TEST(CslintMustUse, DiscardedExpectedIsCaught) {
  const auto vs = flow(R"(
namespace cs {
template <typename T> class Expected {};
struct Engine {
  Expected<int> solve(int spec);
};
void driver(Engine& engine) {
  engine.solve(7);
}
}  // namespace cs
)");
  ASSERT_EQ(count_rule(vs, "must-use"), 1u);
  EXPECT_NE(first(vs, "must-use").message.find("solve"), std::string::npos);
}

TEST(CslintMustUse, ConsumedResultsAreClean) {
  const auto vs = flow(R"(
namespace cs {
template <typename T> class Expected {};
struct Engine {
  Expected<int> solve(int spec);
  int cheap(int spec);
};
int driver(Engine& engine) {
  auto r = engine.solve(7);     // bound: fine
  engine.cheap(1);              // not must-use: fine
  if (!engine.solve(8).ok()) return 1;  // consumed in expression: fine
  return 0;
}
}  // namespace cs
)");
  EXPECT_EQ(count_rule(vs, "must-use"), 0u);
}

// --------------------------------------------------------------- lock-order

TEST(CslintLockOrder, AbbaCycleIsCaught) {
  const auto vs = flow(R"(
#include <mutex>
namespace app {
std::mutex a_mu;
std::mutex b_mu;
void fa() {
  std::lock_guard<std::mutex> l1(a_mu);
  std::lock_guard<std::mutex> l2(b_mu);
}
void fb() {
  std::lock_guard<std::mutex> l1(b_mu);
  std::lock_guard<std::mutex> l2(a_mu);
}
}  // namespace app
)");
  ASSERT_EQ(count_rule(vs, "lock-order"), 1u);
  const Violation& v = first(vs, "lock-order");
  EXPECT_NE(v.message.find("a_mu"), std::string::npos);
  EXPECT_NE(v.message.find("b_mu"), std::string::npos);
}

TEST(CslintLockOrder, ConsistentOrderIsClean) {
  const auto vs = flow(R"(
#include <mutex>
namespace app {
std::mutex a_mu;
std::mutex b_mu;
void fa() {
  std::lock_guard<std::mutex> l1(a_mu);
  std::lock_guard<std::mutex> l2(b_mu);
}
void fb() {
  std::lock_guard<std::mutex> l1(a_mu);
  std::lock_guard<std::mutex> l2(b_mu);
}
}  // namespace app
)");
  EXPECT_EQ(count_rule(vs, "lock-order"), 0u);
}

TEST(CslintLockOrder, CycleThroughCalleeIsCaught) {
  // fa holds a_mu and calls g (which takes b_mu); fb nests them lexically
  // in the opposite order.  The cycle only exists through the call graph.
  const auto vs = flow(R"(
#include <mutex>
namespace app {
std::mutex a_mu;
std::mutex b_mu;
void g() { std::lock_guard<std::mutex> l(b_mu); }
void fa() {
  std::lock_guard<std::mutex> l(a_mu);
  g();
}
void fb() {
  std::lock_guard<std::mutex> l1(b_mu);
  std::lock_guard<std::mutex> l2(a_mu);
}
}  // namespace app
)");
  EXPECT_EQ(count_rule(vs, "lock-order"), 1u);
}

TEST(CslintLockOrder, SelfDeadlockIsCaught) {
  const auto vs = flow(R"(
#include <mutex>
namespace app {
std::mutex mu;
void twice() {
  std::lock_guard<std::mutex> l1(mu);
  std::lock_guard<std::mutex> l2(mu);
}
}  // namespace app
)");
  ASSERT_EQ(count_rule(vs, "lock-order"), 1u);
  EXPECT_NE(first(vs, "lock-order").message.find("already held"),
            std::string::npos);
}

// --------------------------------------------------------- blocking-in-loop

TEST(CslintBlocking, SleepAndSolveInAffineCodeAreCaught) {
  const auto vs = flow(R"(
namespace app {
struct Shard {
  // cs: affinity(loop)
  void tick();
};
void Shard::tick() {
  std::this_thread::sleep_for(1);
}
}  // namespace app
)");
  EXPECT_EQ(count_rule(vs, "blocking-in-loop"), 1u);
}

TEST(CslintBlocking, WorkerCodeMayBlock) {
  const auto vs = flow(R"(
namespace app {
struct Worker {
  void run_batch();
};
void Worker::run_batch() {
  std::this_thread::sleep_for(1);  // not loop-affine: fine
}
}  // namespace app
)");
  EXPECT_EQ(count_rule(vs, "blocking-in-loop"), 0u);
}

// -------------------------------------------------------------- suppression

TEST(CslintFlowSuppression, AllowOnLineAndLineAbove) {
  const auto vs = flow(R"(
namespace cs {
template <typename T> class Expected {};
struct Engine { Expected<int> solve(int spec); };
void driver(Engine& engine) {
  engine.solve(1);  // cslint: allow(must-use)
  // cslint: allow(must-use) fire-and-forget warmup
  engine.solve(2);
  engine.solve(3);  // NOT suppressed
}
}  // namespace cs
)");
  ASSERT_EQ(count_rule(vs, "must-use"), 1u);
  EXPECT_EQ(first(vs, "must-use").line, 9u);
}

// ----------------------------------------------------------------- baseline

TEST(CslintBaseline, RoundTripAndFiltering) {
  TempDir tmp;
  Violation v{"src/engine/server.cpp", 42, "must-use", "msg",
              "engine.solve(1);"};
  Violation other{"src/engine/server.cpp", 99, "must-use", "msg",
                  "engine.solve(2);"};
  Baseline b;
  EXPECT_FALSE(b.contains(v));
  b.add(v);
  EXPECT_TRUE(b.contains(v));
  EXPECT_FALSE(b.contains(other));

  const fs::path file = tmp.path / "baseline.txt";
  b.save(file);
  Baseline loaded;
  loaded.load(file);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.contains(v));
  // The key survives a line-number drift (line is not part of the key) and
  // an absolute-path respelling of the same file.
  Violation moved = v;
  moved.line = 57;
  moved.file = "/abs/prefix/src/engine/server.cpp";
  EXPECT_TRUE(loaded.contains(moved));
}

TEST(CslintBaseline, RepoBaselineFileIsEmpty) {
  // The checked-in baseline must stay empty: src/ is clean under every rule.
  const fs::path repo_baseline =
      fs::path(__FILE__).parent_path().parent_path() / "tools" / "cslint" /
      "baseline.txt";
  ASSERT_TRUE(fs::exists(repo_baseline));
  Baseline b;
  b.load(repo_baseline);
  EXPECT_EQ(b.size(), 0u);
}

// -------------------------------------------------------------------- SARIF

TEST(CslintSarif, SchemaSmoke) {
  std::vector<Violation> vs = {
      {"src/a.cpp", 12, "thread-affinity", "bad \"call\"\nhere", "x"},
      {"src/b.hpp", 0, "pragma-once", "missing", ""},
  };
  const std::string sarif = cs::lint::to_sarif(vs);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"cslint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"thread-affinity\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  // line 0 (whole-file) is clamped to 1 for the schema.
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  // Quotes and newlines inside messages are escaped.
  EXPECT_NE(sarif.find("bad \\\"call\\\"\\nhere"), std::string::npos);
  // Both rules are declared in the driver's rules array.
  EXPECT_NE(sarif.find("{\"id\": \"pragma-once\"}"), std::string::npos);
  // Empty input is still a valid log with an empty results array.
  const std::string empty = cs::lint::to_sarif({});
  EXPECT_NE(empty.find("\"results\": ["), std::string::npos);
}

// -------------------------------------------------------- incremental cache

TEST(CslintCache, ClosureHashTracksDependencies) {
  IncludeHasher h;
  h.add_file("/r/src/core/base.hpp", "struct Base {};", {});
  h.add_file("/r/src/engine/top.hpp", "#include \"core/base.hpp\"",
             {"core/base.hpp"});
  const auto top1 = h.closure_hash("/r/src/engine/top.hpp");
  const auto base1 = h.closure_hash("/r/src/core/base.hpp");
  EXPECT_NE(top1, 0u);

  // Editing the DEPENDENCY changes the dependent's closure hash.
  h.add_file("/r/src/core/base.hpp", "struct Base { int v; };", {});
  EXPECT_NE(h.closure_hash("/r/src/engine/top.hpp"), top1);
  EXPECT_NE(h.closure_hash("/r/src/core/base.hpp"), base1);

  // Unrelated files are unaffected.
  h.add_file("/r/src/other/leaf.hpp", "struct Leaf {};", {});
  const auto leaf = h.closure_hash("/r/src/other/leaf.hpp");
  h.add_file("/r/src/core/base.hpp", "struct Base { long v; };", {});
  EXPECT_EQ(h.closure_hash("/r/src/other/leaf.hpp"), leaf);
}

TEST(CslintCache, IncludeCyclesTerminate) {
  IncludeHasher h;
  h.add_file("/r/src/a.hpp", "#include \"b.hpp\"", {"b.hpp"});
  h.add_file("/r/src/b.hpp", "#include \"a.hpp\"", {"a.hpp"});
  EXPECT_NE(h.closure_hash("/r/src/a.hpp"), 0u);  // terminates
}

TEST(CslintCache, HeaderCachePersistsAndInvalidates) {
  TempDir tmp;
  const fs::path file = tmp.path / "cache.txt";
  HeaderCache cache;
  cache.put("src/net/conn.hpp", 0xabcdef, true, "");
  cache.put("src/net/bad.hpp", 0x123, false, "missing include of x");
  cache.save(file);

  HeaderCache loaded;
  loaded.load(file);
  bool ok = false;
  std::string msg;
  // Hit with the same hash (path respelled absolute still matches).
  EXPECT_TRUE(loaded.lookup("/abs/src/net/conn.hpp", 0xabcdef, &ok, &msg));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(loaded.lookup("src/net/bad.hpp", 0x123, &ok, &msg));
  EXPECT_FALSE(ok);
  EXPECT_NE(msg.find("missing include"), std::string::npos);
  // A changed hash is a miss — the header must be recompiled.
  EXPECT_FALSE(loaded.lookup("src/net/conn.hpp", 0xabcde0, &ok, &msg));
}

// ----------------------------------------------------------- directory walk

TEST(CslintWalk, NewSubdirsCoveredBuildTreesPruned) {
  TempDir tmp;
  tmp.file("src/net/a.hpp", "#pragma once\n");
  tmp.file("src/future_subsys/b.hpp", "#pragma once\n");  // no hardcoded list
  tmp.file("src/future_subsys/b.cpp", "int x;\n");
  tmp.file("build/copy.hpp", "#pragma once\n");       // pruned
  tmp.file("build-asan/copy.cpp", "int y;\n");        // pruned
  tmp.file("src/.hidden/c.hpp", "#pragma once\n");    // pruned
  const auto sources = cs::lint::collect_sources(tmp.path);
  std::vector<std::string> rel;
  for (const auto& p : sources)
    rel.push_back(p.lexically_relative(tmp.path).generic_string());
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_NE(std::find(rel.begin(), rel.end(), "src/net/a.hpp"), rel.end());
  EXPECT_NE(std::find(rel.begin(), rel.end(), "src/future_subsys/b.hpp"),
            rel.end());
  EXPECT_NE(std::find(rel.begin(), rel.end(), "src/future_subsys/b.cpp"),
            rel.end());
}
