// The adversarial cycle-stealing game (sequel preview, full model).
#include <cmath>

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "core/worst_case.hpp"

namespace cs {
namespace {

TEST(AdversarialGame, ZeroInterruptsIsOneChunk) {
  const auto sol = solve_adversarial_game(100.0, 2.0, 0);
  EXPECT_NEAR(sol.value, 98.0, 1e-9);
  ASSERT_EQ(sol.principal.size(), 1u);
  EXPECT_NEAR(sol.principal[0], 100.0, 1e-9);
}

TEST(AdversarialGame, ValueDecreasesWithInterrupts) {
  double prev = 1e18;
  for (std::size_t k : {0, 1, 2, 4, 8}) {
    const auto sol = solve_adversarial_game(400.0, 1.0, k);
    EXPECT_LT(sol.value, prev) << k;
    EXPECT_GE(sol.value, 0.0);
    prev = sol.value;
  }
}

TEST(AdversarialGame, OneInterruptHandComputable) {
  // With k = 1 and grid-free reasoning: A plays t, adversary interrupts iff
  // the remainder (played as one chunk) is worth less than conceding the
  // period.  Optimal t equalizes (t - c) + W(T - t, 1) with (T - t - c)+.
  // For T = 100, c = 2 the equalization yields W ~ T - Theta(sqrt(cT)).
  const auto sol = solve_adversarial_game(100.0, 2.0, 1, {.grid_points = 4096});
  EXPECT_GT(sol.value, 100.0 - 2.0 * std::sqrt(2.0 * 100.0) - 4.0);
  EXPECT_LT(sol.value, 98.0);  // strictly worse than no adversary
  // Interrupting the first period must not pay for the adversary more than
  // letting it run (equalization): both branches within grid tolerance.
  const double t0 = sol.first_period;
  const double h = 100.0 / 4096.0;
  const auto rest_k1 = solve_adversarial_game(100.0 - t0, 2.0, 1,
                                              {.grid_points = 2048});
  const auto rest_k0 = solve_adversarial_game(100.0 - t0, 2.0, 0,
                                              {.grid_points = 2048});
  const double complete = (t0 - 2.0) + rest_k1.value;
  const double interrupted = rest_k0.value;
  EXPECT_NEAR(std::min(complete, interrupted), sol.value, 20.0 * h);
}

TEST(AdversarialGame, SqrtLossLaw) {
  // loss(T, k) ~ Theta(sqrt(k c T)): ratios within a mild constant band.
  const double c = 1.0;
  for (double T : {200.0, 800.0}) {
    for (std::size_t k : {1, 4}) {
      const auto sol =
          solve_adversarial_game(T, c, k, {.grid_points = 4096});
      const double scale = std::sqrt(static_cast<double>(k) * c * T);
      EXPECT_GT(sol.loss, 0.8 * scale) << T << " " << k;
      EXPECT_LT(sol.loss, 3.5 * scale) << T << " " << k;
    }
  }
}

TEST(AdversarialGame, BeatsStaticEqualPeriodPlan) {
  // The dynamic game value must dominate the static plan of worst_case.hpp
  // (the game player can adapt after each survived period).
  const double T = 400.0, c = 1.0;
  const std::size_t k = 4;
  const auto game = solve_adversarial_game(T, c, k, {.grid_points = 4096});
  const auto statics = optimal_worst_case_plan(T, c, k);
  EXPECT_GE(game.value, statics.guaranteed - T / 4096.0 * 4.0);
  // ... and the static plan is asymptotically competitive (within ~20%).
  EXPECT_GT(statics.guaranteed, 0.8 * game.value);
}

TEST(AdversarialGame, PrincipalVariationNearlyFillsBudget) {
  // The player concedes only an un-defendable tail: with k interrupts left,
  // any commitment inside the last stretch can be wiped, so the PV stops
  // short of T by a small amount (bounded by a few multiples of (k+1)c).
  const double T = 300.0, c = 2.0;
  const std::size_t k = 3;
  const auto sol = solve_adversarial_game(T, c, k);
  EXPECT_LE(sol.principal.total_duration(), T + 1e-9);
  EXPECT_GE(sol.principal.total_duration(),
            T - 2.0 * static_cast<double>(k + 1) * c);
  for (double t : sol.principal.periods()) EXPECT_GT(t, c);
}

TEST(AdversarialGame, ValidatesArguments) {
  EXPECT_THROW(solve_adversarial_game(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(solve_adversarial_game(10.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(solve_adversarial_game(10.0, 1.0, 1, {.grid_points = 2}),
               std::invalid_argument);
}

TEST(FixedPlanGameValue, MatchesGuaranteedWork) {
  const Schedule s({10.0, 8.0, 6.0});
  EXPECT_DOUBLE_EQ(fixed_plan_game_value(s, 1.0, 1),
                   guaranteed_work(s, 1.0, 1));
}

}  // namespace
}  // namespace cs
