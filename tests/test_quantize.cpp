// Discrete (indivisible-task) analogues of the guidelines — the paper's
// Section 6 open question, quantified.
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "core/quantize.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Quantize, PeriodsSnapToLattice) {
  const UniformRisk p(480.0);
  const double c = 4.0, u = 3.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto q = quantize_schedule(g.schedule, p, c, u);
  for (double t : q.schedule.periods()) {
    const double k = (t - c) / u;
    EXPECT_NEAR(k, std::round(k), 1e-9) << t;
    EXPECT_GE(k, 1.0 - 1e-9);
  }
}

TEST(Quantize, FloorNeverLengthensPeriods) {
  const UniformRisk p(480.0);
  const double c = 4.0, u = 7.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto q = quantize_schedule(g.schedule, p, c, u, QuantizeRule::Floor);
  ASSERT_LE(q.schedule.size(), g.schedule.size());
  for (std::size_t i = 0; i < q.schedule.size(); ++i)
    EXPECT_LE(q.schedule[i], g.schedule[i] + 1e-9);
}

TEST(Quantize, FineTasksLoseAlmostNothing) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto q = quantize_schedule(g.schedule, p, c, 0.5);
  EXPECT_GT(q.efficiency, 0.995);
}

TEST(Quantize, EfficiencyDegradesGracefullyWithTaskSize) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  double prev = 1.1;
  for (double u : {0.5, 2.0, 8.0, 24.0}) {
    const auto q = quantize_schedule(g.schedule, p, c, u);
    EXPECT_LE(q.efficiency, 1.0 + 1e-6) << u;
    EXPECT_GT(q.efficiency, 0.75) << u;
    EXPECT_LE(q.efficiency, prev + 0.05) << u;  // roughly monotone decay
    prev = q.efficiency;
  }
}

TEST(Quantize, BestRuleAtLeastAsGoodAsFloor) {
  const PolynomialRisk p(3, 300.0);
  const double c = 2.0;
  const auto g = GuidelineScheduler(p, c).run();
  for (double u : {1.0, 5.0, 11.0}) {
    const auto floor_q =
        quantize_schedule(g.schedule, p, c, u, QuantizeRule::Floor);
    const auto best_q =
        quantize_schedule(g.schedule, p, c, u, QuantizeRule::Best);
    EXPECT_GE(best_q.expected, floor_q.expected - 1e-9) << u;
  }
}

TEST(Quantize, DropsPureOverheadPeriods) {
  const UniformRisk p(100.0);
  // Periods of payload < u round (floor) to nothing and must vanish.
  const Schedule s({5.0, 4.5});  // payloads 1, 0.5 with c = 4
  const auto q = quantize_schedule(s, p, 4.0, 2.0, QuantizeRule::Floor);
  EXPECT_TRUE(q.schedule.empty());
}

TEST(Quantize, ValidatesArguments) {
  const UniformRisk p(100.0);
  EXPECT_THROW(quantize_schedule(Schedule({5.0}), p, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(quantize_schedule(Schedule({5.0}), p, -1.0, 1.0),
               std::invalid_argument);
}

TEST(DiscreteOptimum, MatchesContinuousWhenTasksAreFine) {
  const UniformRisk p(120.0);
  const double c = 4.0;
  const auto cont = GuidelineScheduler(p, c).run();
  const auto disc = discrete_optimal_schedule(p, c, 1.0);
  EXPECT_GT(disc.expected, 0.97 * cont.expected);
  EXPECT_LE(disc.expected, cont.expected * (1.0 + 1e-6));
}

TEST(DiscreteOptimum, QuantizedGuidelineNearDiscreteOptimum) {
  // The open question's answer: snapping the continuous guideline loses
  // little even against the *true* discrete optimum.
  const UniformRisk p(120.0);
  const double c = 4.0;
  for (double u : {2.0, 6.0}) {
    const auto cont = GuidelineScheduler(p, c).run();
    const auto snapped = quantize_schedule(cont.schedule, p, c, u);
    const auto disc = discrete_optimal_schedule(p, c, u);
    EXPECT_GE(snapped.expected, 0.95 * disc.expected) << u;
    EXPECT_LE(snapped.expected, disc.expected * (1.0 + 1e-6)) << u;
  }
}

TEST(DiscreteOptimum, PeriodsOnLattice) {
  const UniformRisk p(60.0);
  const auto disc = discrete_optimal_schedule(p, 2.0, 3.0);
  for (double t : disc.schedule.periods()) {
    const double k = (t - 2.0) / 3.0;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
  EXPECT_NEAR(disc.expected, expected_work(disc.schedule, p, 2.0), 1e-9);
}

TEST(DiscreteOptimum, GuardsStateExplosion) {
  const GeometricLifespan p(1.0005);  // enormous horizon
  EXPECT_THROW(discrete_optimal_schedule(p, 0.01, 0.01),
               std::invalid_argument);
}

}  // namespace
}  // namespace cs
