// Cross-module integration: the end-to-end pipelines a user actually runs.
#include <cmath>

#include <gtest/gtest.h>

#include "cyclesteal/cyclesteal.hpp"

namespace cs {
namespace {

TEST(Integration, TraceToScheduleToSimulation) {
  // 1. Synthesize a memoryless owner trace (ground truth: mean idle 90).
  num::RandomStream rng(1234);
  const auto trace = trace::generate_poisson_sessions(
      {.mean_busy = 45.0, .mean_idle = 90.0, .episodes = 3000}, rng);

  // 2. Estimate a smooth life function from it.
  const auto fitted = trace::estimate_life_function(trace);

  // 3. Schedule with the estimate; score under the TRUE law.
  const double c = 2.0;
  const GeometricLifespan truth(std::exp(1.0 / 90.0));
  const auto with_fit = GuidelineScheduler(*fitted, c).run();
  const auto with_truth = GuidelineScheduler(truth, c).run();
  const double e_fit = expected_work(with_fit.schedule, truth, c);
  const double e_truth = expected_work(with_truth.schedule, truth, c);
  // Robustness claim of Section 1: approximate knowledge costs little.
  EXPECT_GT(e_fit, 0.95 * e_truth);

  // 4. And the simulated mean under the true law agrees with analytics.
  const auto mc = sim::monte_carlo_episodes(with_fit.schedule, truth, c,
                                            {.episodes = 120000});
  const auto ci = num::confidence_interval(mc.work, 3.89);
  EXPECT_TRUE(ci.contains(e_fit));
}

TEST(Integration, ParametricFitBeatsRawEmpiricalSlightly) {
  num::RandomStream rng(77);
  const auto trace = trace::generate_poisson_sessions(
      {.mean_busy = 45.0, .mean_idle = 60.0, .episodes = 2000}, rng);
  const auto gaps = trace.idle_gaps();
  const auto best = trace::select_life_function_model(gaps);
  const double c = 1.5;
  const GeometricLifespan truth(std::exp(1.0 / 60.0));
  const auto g = GuidelineScheduler(*best.model, c).run();
  const double e = expected_work(g.schedule, truth, c);
  const double e_oracle =
      expected_work(GuidelineScheduler(truth, c).run().schedule, truth, c);
  EXPECT_GT(e, 0.97 * e_oracle);
}

TEST(Integration, FarmGuidelineBeatsNaivePolicies) {
  // The paper's economic argument at system level: better chunking -> the
  // same NOW drains the bag faster.
  const UniformRisk life(240.0);
  sim::FarmOptions opt;
  opt.task_count = 3000;
  opt.profile = {.kind = sim::TaskProfile::Kind::Uniform,
                 .mean = 1.0,
                 .spread = 0.5};
  opt.seed = 99;

  auto run_policy = [&](const char* name) {
    auto stations = sim::homogeneous_farm(6, life, 2.0, 60.0);
    const auto policy = sim::make_policy(name);
    return sim::run_farm(stations, *policy, opt);
  };
  const auto guide = run_policy("guideline");
  const auto once = run_policy("all-at-once");
  const auto doubling = run_policy("doubling");
  ASSERT_TRUE(guide.completed);
  EXPECT_LT(guide.makespan, once.makespan);
  EXPECT_LT(guide.makespan, doubling.makespan);
}

TEST(Integration, CheckpointPlanConsistentWithGuideline) {
  // The saves adapter must inherit the guideline structure: for memoryless
  // failures, equal intervals equal to the BCLR period (+ save cost fit).
  const GeometricLifespan failures(std::exp(1.0 / 200.0));
  const double s = 5.0;
  const auto plan = sim::plan_saves(failures, s, 2000.0);
  const double t_star = bclr_geomlife_tstar(failures, s);
  ASSERT_GE(plan.intervals.size(), 3u);
  EXPECT_NEAR(plan.intervals[0], t_star, 0.05 * t_star);
}

TEST(Integration, UmbrellaHeaderExposesEverything) {
  // Compile-time surface check: one object of each major public type.
  const UniformRisk p(100.0);
  const GuidelineScheduler sched(p, 2.0);
  const auto g = sched.run();
  const auto dp = dp_reference(p, 2.0, {.grid_points = 512});
  const auto greedy = greedy_schedule(p, 2.0);
  const auto wc = optimal_worst_case_plan(100.0, 2.0, 1);
  const auto verdict = admits_optimal_schedule(p, 2.0);
  EXPECT_GT(g.expected, 0.0);
  EXPECT_GT(dp.expected, 0.0);
  EXPECT_GT(greedy.expected, 0.0);
  EXPECT_GT(wc.guaranteed, 0.0);
  EXPECT_TRUE(verdict.exists);
}

TEST(Integration, HeterogeneousFarmAllStationsContribute) {
  std::vector<sim::WorkstationConfig> stations;
  {
    sim::WorkstationConfig ws;
    ws.label = "uniform";
    ws.life = std::make_unique<UniformRisk>(200.0);
    ws.c = 2.0;
    ws.mean_busy_gap = 40.0;
    stations.push_back(std::move(ws));
  }
  {
    sim::WorkstationConfig ws;
    ws.label = "memoryless";
    ws.life = std::make_unique<GeometricLifespan>(std::exp(1.0 / 120.0));
    ws.c = 1.0;
    ws.mean_busy_gap = 40.0;
    stations.push_back(std::move(ws));
  }
  sim::FarmOptions opt;
  opt.task_count = 2000;
  opt.profile = {.kind = sim::TaskProfile::Kind::Fixed, .mean = 1.0};
  opt.seed = 5;
  const auto policy = sim::make_guideline_policy();
  const auto r = sim::run_farm(stations, *policy, opt);
  ASSERT_TRUE(r.completed);
  for (const auto& ws : r.stations) {
    EXPECT_GT(ws.tasks_done, 0u) << ws.label;
    EXPECT_GT(ws.episodes, 0u) << ws.label;
  }
}

TEST(Integration, GuidelineRobustToMixtureLifeFunctions) {
  // Day/night mixture: bimodal gaps; the guideline must still produce a
  // valid schedule close to the DP reference.
  std::vector<std::unique_ptr<LifeFunction>> comps;
  comps.push_back(std::make_unique<GeometricLifespan>(std::exp(1.0 / 30.0)));
  comps.push_back(std::make_unique<UniformRisk>(600.0));
  const Mixture mix(std::move(comps), {0.7, 0.3});
  const double c = 2.0;
  const auto g = GuidelineScheduler(mix, c).run();
  DpOptions dopt;
  dopt.grid_points = 4096;
  const auto dp = dp_reference(mix, c, dopt);
  EXPECT_GT(g.expected, 0.95 * dp.expected);
}

}  // namespace
}  // namespace cs
