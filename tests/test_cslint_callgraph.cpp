// Tests for cslint v3's interprocedural layer: the parser's escape-tracking
// events (call arguments, assignments, returns, captures, holds() contracts,
// base classes), the cross-TU call graph (qualified/receiver/virtual
// resolution, affinity inference, transitive blocking reachability), the
// nonowning-escape rule in all its sink variants, and the per-function
// summary cache (round trip, mtime fast path, touch-without-change hit).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "cslint.hpp"
#include "flow.hpp"
#include "sarif.hpp"
#include "summary.hpp"

namespace fs = std::filesystem;
using cs::lint::CallGraph;
using cs::lint::FileModel;
using cs::lint::FlowAnalyzer;
using cs::lint::FlowContext;
using cs::lint::FlowOptions;
using cs::lint::FuncNode;
using cs::lint::SummaryCache;
using cs::lint::Violation;

namespace {

std::vector<Violation> flow(std::string_view src,
                            const FlowOptions& opt = {}) {
  return cs::lint::lint_flow("fix.cpp", src, opt);
}

std::size_t count_rule(const std::vector<Violation>& vs,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

const Violation& first(const std::vector<Violation>& vs,
                       std::string_view rule) {
  const auto it =
      std::find_if(vs.begin(), vs.end(),
                   [&](const Violation& v) { return v.rule == rule; });
  EXPECT_NE(it, vs.end()) << "no violation for rule " << rule;
  return *it;
}

const FlowContext* ctx_named(const FileModel& fm, std::string_view name) {
  for (const auto& c : fm.contexts)
    if (c.name == name) return &c;
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// parser events the interprocedural layer consumes
// ---------------------------------------------------------------------------

TEST(ParseEvents, CallArgumentsRecordLoneIdentifiers) {
  const auto fm = cs::lint::parse_file_model("x.cpp", R"(
void g(int a, int b, int c);
void f(int u, int v) { g(u, v + 1, std::move(v)); }
)");
  const FlowContext* f = ctx_named(fm, "f");
  ASSERT_NE(f, nullptr);
  // std::move(v) is itself recorded as a call site; find the call to g.
  const auto git =
      std::find_if(f->calls.begin(), f->calls.end(),
                   [](const auto& c) { return c.callee == "g"; });
  ASSERT_NE(git, f->calls.end());
  const auto& args = git->args;
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], "u");
  EXPECT_EQ(args[1], "");  // expression: not a lone identifier
  EXPECT_EQ(args[2], "v");  // through std::move
}

TEST(ParseEvents, ParamOrderAndAssignsAndReturns) {
  const auto fm = cs::lint::parse_file_model("x.cpp", R"(
struct S {
  int take(int first, int second) {
    member_ = first;
    this->other_.field = second;
    return second;
  }
  int member_;
};
)");
  const FlowContext* c = ctx_named(fm, "S::take");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->param_order.size(), 2u);
  EXPECT_EQ(c->param_order[0], "first");
  EXPECT_EQ(c->param_order[1], "second");
  ASSERT_EQ(c->assigns.size(), 2u);
  EXPECT_EQ(c->assigns[0].lhs, "member_");
  EXPECT_EQ(c->assigns[0].rhs, "first");
  EXPECT_EQ(c->assigns[1].lhs, "other_.field");  // leading this-> stripped
  EXPECT_EQ(c->assigns[1].rhs, "second");
  ASSERT_EQ(c->rets.size(), 1u);
  EXPECT_EQ(c->rets[0].ident, "second");
}

TEST(ParseEvents, LambdaCapturesAndDisposition) {
  const auto fm = cs::lint::parse_file_model("x.cpp", R"(
struct Q { template <typename F> void post(F&& f); };
void f(int x, int y, Q& q) { q.post([x, &y] { (void)x; }); }
auto g(int z) { return [=] { return z; }; }
)");
  const FlowContext* lam1 = ctx_named(fm, "f::<lambda@3>");
  ASSERT_NE(lam1, nullptr);
  ASSERT_EQ(lam1->captures.size(), 2u);
  EXPECT_EQ(lam1->captures[0].name, "x");
  EXPECT_FALSE(lam1->captures[0].by_ref);
  EXPECT_EQ(lam1->captures[1].name, "y");
  EXPECT_TRUE(lam1->captures[1].by_ref);
  EXPECT_EQ(lam1->escape, ">post");

  const FlowContext* lam2 = ctx_named(fm, "g::<lambda@4>");
  ASSERT_NE(lam2, nullptr);
  EXPECT_EQ(lam2->capture_default, '=');
  EXPECT_EQ(lam2->escape, "return");
}

TEST(ParseEvents, HoldsContractAndClassBases) {
  const auto fm = cs::lint::parse_file_model("x.cpp", R"(
struct Base {};
struct Other {};
struct Derived : public Base, private Other {
  // cslint: holds(mu_, other_mu_)
  void locked_op();
};
)");
  const auto it = fm.class_bases.find("Derived");
  ASSERT_NE(it, fm.class_bases.end());
  ASSERT_EQ(it->second.size(), 2u);
  EXPECT_EQ(it->second[0], "Base");
  EXPECT_EQ(it->second[1], "Other");

  const FlowContext* c = ctx_named(fm, "Derived::locked_op");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->holds.size(), 2u);
  EXPECT_EQ(c->holds[0], "mu_");
  EXPECT_EQ(c->holds[1], "other_mu_");
}

// ---------------------------------------------------------------------------
// call graph: resolution + stats
// ---------------------------------------------------------------------------

TEST(CallGraphResolution, VirtualCallResolvesToAllOverriders) {
  // A blocking override behind a base-typed receiver must still be found:
  // the family walk resolves base.step() to every overrider.
  const auto vs = flow(R"(
struct Base {
  virtual void step();
};
struct Impl : public Base {
  void step() override { solver_.join(); }
  struct { void join(); } solver_;
};
// cs: affinity(loop)
void tick(Base& b) { b.step(); }
)");
  EXPECT_EQ(count_rule(vs, "blocking-in-loop"), 1u)
      << cs::lint::to_sarif(vs);
}

TEST(CallGraphResolution, ExplicitQualificationStaysStatic) {
  // A::step is explicitly qualified: the overrider in B must NOT taint it.
  const auto vs = flow(R"(
struct A { void step() {} };
struct B : public A { void step() { worker_.join(); } struct { void join(); } worker_; };
// cs: affinity(loop)
void tick(A& a) { a.A::step(); }
)");
  EXPECT_EQ(count_rule(vs, "blocking-in-loop"), 0u);
}

TEST(CallGraphStats, ResolutionLadderCounts) {
  std::vector<FileModel> files;
  files.push_back(cs::lint::parse_file_model("x.cpp", R"(
struct S { void known(); };
void f(S& s) {
  s.known();          // exact
  std::getline(a, b); // external (std-qualified)
  mystery(1);         // external (name unknown in repo)
}
)"));
  CallGraph g;
  g.build(files);
  const auto& st = g.stats();
  EXPECT_EQ(st.exact_sites, 1u);
  EXPECT_EQ(st.external_sites, 2u);
  EXPECT_EQ(st.unresolved_sites, 0u);
  EXPECT_EQ(st.resolution_rate(), 1.0);
}

TEST(CallGraphDot, DumpNamesNodesAndEdges) {
  std::vector<FileModel> files;
  files.push_back(cs::lint::parse_file_model("x.cpp", R"(
struct S { void helper() {} void entry() { helper(); } };
)"));
  CallGraph g;
  g.build(files);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph cslint_callgraph"), std::string::npos);
  EXPECT_NE(dot.find("S::entry"), std::string::npos);
  EXPECT_NE(dot.find("S::helper"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// ---------------------------------------------------------------------------
// transitive propagation: affinity inference + blocking chains
// ---------------------------------------------------------------------------

TEST(TransitiveBlocking, ThreeHopChainReportedAtOrigin) {
  const auto vs = flow(R"(
struct Solver { int solve(int n); };
struct Shard {
  // cs: affinity(loop)
  void on_ready() { drain(); }
  void drain() { finish(); }
  void finish() { last_ = solver_.solve(3); }
  Solver solver_;
  int last_ = 0;
};
)");
  ASSERT_EQ(count_rule(vs, "blocking-in-loop"), 1u);
  const Violation& v = first(vs, "blocking-in-loop");
  EXPECT_EQ(v.line, 5u);  // reported at the origin's first hop
  EXPECT_NE(v.message.find("Shard::drain -> Shard::finish -> solve"),
            std::string::npos)
      << v.message;
}

TEST(TransitiveBlocking, OffWithoutTransitiveOption) {
  FlowOptions opt;
  opt.transitive = false;
  const auto vs = flow(R"(
struct Solver { int solve(int n); };
struct Shard {
  // cs: affinity(loop)
  void on_ready() { drain(); }
  void drain() { last_ = solver_.solve(3); }
  Solver solver_;
  int last_ = 0;
};
)",
                       opt);
  EXPECT_EQ(count_rule(vs, "blocking-in-loop"), 0u);
}

TEST(InferredAffinity, CalleeOnlyReachableFromLoopIsChecked) {
  // helper() is only ever called from declared loop-affine code, so it is
  // inferred loop-affine: its own call to an affine-only mutator is fine,
  // but an unannotated third party calling helper() is still NOT flagged
  // (inference never widens the set of reported sites beyond chains).
  const auto vs = flow(R"(
struct Loop {
  // cs: affinity(loop)
  void tick() { helper(); }
  void helper() { mutate(); }
  // cs: affinity(loop)
  void mutate();
};
)");
  // helper is inferred affine, so helper -> mutate is a legal affine call.
  EXPECT_EQ(count_rule(vs, "thread-affinity"), 0u)
      << cs::lint::to_sarif(vs);
}

TEST(InferredAffinity, MixedCallersBlockInference) {
  // helper() is reachable from both loop-affine and plain code: it must NOT
  // be inferred affine, so its call to the affine mutator is flagged.
  const auto vs = flow(R"(
struct Loop {
  // cs: affinity(loop)
  void tick() { helper(); }
  void helper() { mutate(); }
  // cs: affinity(loop)
  void mutate();
};
void elsewhere(Loop& l) { l.helper(); }
)");
  EXPECT_EQ(count_rule(vs, "thread-affinity"), 1u);
}

// ---------------------------------------------------------------------------
// holds() contracts feed the interprocedural lock graph
// ---------------------------------------------------------------------------

TEST(HoldsContract, ContractEdgeCompletesAbbaCycle) {
  const auto vs = flow(R"(
#include <mutex>
std::mutex g_a;
std::mutex g_b;
// cslint: holds(g_b)
void with_b_held() { std::lock_guard<std::mutex> lk(g_a); }
void other() {
  std::lock_guard<std::mutex> l1(g_a);
  std::lock_guard<std::mutex> l2(g_b);
}
)");
  EXPECT_EQ(count_rule(vs, "lock-order"), 1u) << cs::lint::to_sarif(vs);
}

TEST(HoldsContract, ConsistentOrderStaysQuiet) {
  const auto vs = flow(R"(
#include <mutex>
std::mutex g_a;
std::mutex g_b;
// cslint: holds(g_a)
void with_a_held() { std::lock_guard<std::mutex> lk(g_b); }
void other() {
  std::lock_guard<std::mutex> l1(g_a);
  std::lock_guard<std::mutex> l2(g_b);
}
)");
  EXPECT_EQ(count_rule(vs, "lock-order"), 0u);
}

// ---------------------------------------------------------------------------
// nonowning-escape
// ---------------------------------------------------------------------------

TEST(NonowningEscape, MemberStoreContainerReturnAndCapture) {
  const auto vs = flow(R"(
#include <string_view>
#include <vector>
struct FunctionRef {};
struct Q { template <typename F> void post(F&& f); };
struct S {
  void set(FunctionRef f) { fn_ = f; }
  void add(std::string_view n) { names_.push_back(n); }
  std::string_view echo(std::string_view s) { return s; }
  void defer(FunctionRef f, Q& q) { q.post([f] { (void)f; }); }
  FunctionRef fn_;
  std::vector<std::string_view> names_;
};
)");
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 4u)
      << cs::lint::to_sarif(vs);
}

TEST(NonowningEscape, StaticLocalIsAnEscapeTarget) {
  const auto vs = flow(R"(
struct FunctionRef {};
void f(FunctionRef cb) {
  static FunctionRef last;
  last = cb;
}
)");
  ASSERT_EQ(count_rule(vs, "nonowning-escape"), 1u);
  EXPECT_NE(first(vs, "nonowning-escape").message.find("static local"),
            std::string::npos);
}

TEST(NonowningEscape, SynchronousUseAndOwningTypesStayQuiet) {
  const auto vs = flow(R"(
#include <string>
#include <vector>
struct FunctionRef {};
struct S {
  void apply(FunctionRef f) { use(f); }          // pass-down: fine
  void keep(std::string owned) { name_ = owned; }  // owning type: fine
  void local(FunctionRef f) { FunctionRef c = f; use(c); }  // local copy
  static void use(FunctionRef f);
  std::string name_;
};
)");
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 0u)
      << cs::lint::to_sarif(vs);
}

TEST(NonowningEscape, TransitivePropagationThroughWrapper) {
  const auto vs = flow(R"(
struct FunctionRef {};
struct Sink {
  void set(FunctionRef f) { fn_ = f; }
  FunctionRef fn_;
};
void wrapper(FunctionRef g, Sink& s) { s.set(g); }
)");
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 2u);
  bool found_transitive = false;
  for (const auto& v : vs)
    if (v.message.find("passed to 'Sink::set'") != std::string::npos)
      found_transitive = true;
  EXPECT_TRUE(found_transitive) << cs::lint::to_sarif(vs);
}

TEST(NonowningEscape, AllowAnnotationSuppresses) {
  const auto vs = flow(R"(
struct FunctionRef {};
struct S {
  void pin(FunctionRef f) {
    fn_ = f;  // cslint: allow(nonowning-escape) referent is static
  }
  FunctionRef fn_;
};
)");
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 0u);
}

TEST(NonowningEscape, ByRefCaptureDoesNotFire) {
  const auto vs = flow(R"(
struct FunctionRef {};
struct Q { template <typename F> void post(F&& f); };
void f(FunctionRef cb, Q& q) { q.post([&cb] { (void)cb; }); }
)");
  // By-ref capture is a lifetime bug of a different kind (dangling ref to
  // the parameter itself) but is not a non-owning *copy* escape.
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 0u);
}

// ---------------------------------------------------------------------------
// summary cache
// ---------------------------------------------------------------------------

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("cslint_callgraph_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

const char* kSummarySrc = R"(
struct FunctionRef {};
struct S {
  // cslint: holds(mu_)
  void locked(FunctionRef f) { fn_ = f; }
  FunctionRef fn_;
};
)";

}  // namespace

TEST(SummaryCacheTest, RoundTripPreservesTheModel) {
  TempDir tmp;
  const fs::path file = tmp.path / "summaries.txt";
  {
    SummaryCache cache;
    cache.put("s.cpp", 100, 50, kSummarySrc,
              cs::lint::parse_file_model("s.cpp", kSummarySrc));
    cache.save(file);
  }
  SummaryCache cache;
  cache.load(file);
  EXPECT_EQ(cache.size(), 1u);
  const FileModel* m = cache.lookup("s.cpp", 100, 50, kSummarySrc);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(cache.fast_hits(), 1u);

  // The revived model drives the rules identically to a fresh parse.
  FlowAnalyzer fa;
  FileModel copy = *m;
  copy.raw_lines = cs::lint::split_lines(kSummarySrc);
  fa.add_model(std::move(copy));
  const auto vs = fa.run();
  EXPECT_EQ(count_rule(vs, "nonowning-escape"), 1u)
      << cs::lint::to_sarif(vs);

  const FlowContext* c = ctx_named(fa.files()[0], "S::locked");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->holds.size(), 1u);
  EXPECT_EQ(c->holds[0], "mu_");
}

TEST(SummaryCacheTest, TouchWithoutChangeIsAHashHit) {
  SummaryCache cache;
  cache.put("s.cpp", 100, 50, kSummarySrc,
            cs::lint::parse_file_model("s.cpp", kSummarySrc));
  // Same content, new mtime: the hash fallback keeps it a hit...
  EXPECT_NE(cache.lookup("s.cpp", 999, 50, kSummarySrc), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  // ...and refreshes the stamp so the next lookup takes the fast path.
  EXPECT_NE(cache.lookup("s.cpp", 999, 50, kSummarySrc), nullptr);
  EXPECT_EQ(cache.fast_hits(), 1u);
}

TEST(SummaryCacheTest, ChangedContentIsAMiss) {
  SummaryCache cache;
  cache.put("s.cpp", 100, 50, kSummarySrc,
            cs::lint::parse_file_model("s.cpp", kSummarySrc));
  EXPECT_EQ(cache.lookup("s.cpp", 999, 51, "int other;"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SummaryCacheTest, MalformedFileIsIgnored) {
  TempDir tmp;
  const fs::path file = tmp.path / "summaries.txt";
  std::ofstream(file) << "not-the-magic\ngarbage\n";
  SummaryCache cache;
  cache.load(file);
  EXPECT_EQ(cache.size(), 0u);
}
