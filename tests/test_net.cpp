// Unit tests for the cs::net layer in isolation: EventLoop task posting,
// ticks, and fd dispatch; Conn framing, batching, backpressure, overflow,
// EOF, and close-after-flush — all over socketpairs, no real TCP.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace cs::net {
namespace {

/// Spin-wait for a condition with a generous deadline (these tests cross
/// threads, so exact timing is unknowable; 5 s is "hung", not "slow").
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// An EventLoop running on its own thread.  Register fds/conns BEFORE
/// start(), or via loop.post() afterwards (the loop's threading contract).
struct LoopRunner {
  EventLoop loop;
  std::thread thread;

  void start() {
    thread = std::thread([this] { loop.run(); });
  }
  ~LoopRunner() {
    loop.stop();
    if (thread.joinable()) thread.join();
  }
};

/// A socketpair; fd[0] is given to the Conn, fd[1] plays the peer.
struct Pair {
  int fd[2] = {-1, -1};
  Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~Pair() {
    close_quietly(fd[0]);
    close_quietly(fd[1]);
  }
  void send_peer(const std::string& bytes) const {
    ASSERT_EQ(::send(fd[1], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  std::string read_peer(std::size_t max = 4096) const {
    std::string buf(max, '\0');
    const ssize_t n = ::recv(fd[1], buf.data(), buf.size(), 0);
    buf.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    return buf;
  }
};

// -------------------------------------------------------------- EventLoop

TEST(EventLoop, RunsPostedTasksFromOtherThreads) {
  LoopRunner runner;
  runner.start();
  std::atomic<int> ran{0};
  std::atomic<bool> on_loop_thread{false};
  runner.loop.post([&] {
    on_loop_thread.store(runner.loop.in_loop_thread());
    ran.fetch_add(1);
  });
  EXPECT_TRUE(eventually([&] { return ran.load() == 1; }));
  EXPECT_TRUE(on_loop_thread.load());
}

TEST(EventLoop, PostedTaskMayPostAgain) {
  LoopRunner runner;
  runner.start();
  std::atomic<int> depth{0};
  runner.loop.post([&] {
    depth.fetch_add(1);
    runner.loop.post([&] { depth.fetch_add(1); });
  });
  EXPECT_TRUE(eventually([&] { return depth.load() == 2; }));
}

TEST(EventLoop, TasksPostedAroundStopStillRun) {
  // post() before run() and post() concurrent with stop() both execute:
  // run()'s final drain picks up stragglers, so a server completion never
  // vanishes into a dead queue.  The straggler is posted from the loop
  // thread right after stop() — the last moment a post can happen.
  LoopRunner runner;
  std::atomic<int> ran{0};
  runner.loop.post([&] { ran.fetch_add(1); });  // before run() even starts
  runner.start();
  EXPECT_TRUE(eventually([&] { return ran.load() == 1; }));
  runner.loop.post([&] {
    runner.loop.stop();
    runner.loop.post([&] { ran.fetch_add(1); });
  });
  runner.thread.join();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_TRUE(runner.loop.stopped());
}

TEST(EventLoop, TickFiresPeriodically) {
  LoopRunner runner;
  std::atomic<int> ticks{0};
  runner.loop.set_tick(std::chrono::milliseconds(5),
                       [&] { ticks.fetch_add(1); });
  runner.start();
  EXPECT_TRUE(eventually([&] { return ticks.load() >= 3; }));
}

TEST(EventLoop, DispatchesReadinessAndSurvivesSelfRemoval) {
  Pair pair;     // declared first: outlives the loop thread
  LoopRunner runner;
  std::atomic<int> fired{0};
  runner.loop.add(pair.fd[0], EPOLLIN, [&](std::uint32_t) {
    fired.fetch_add(1);
    runner.loop.remove(pair.fd[0]);  // remove self mid-dispatch
  });
  runner.start();
  pair.send_peer("x");
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }));
  // Level-triggered + unread byte: had the removal not stuck, this would
  // keep firing.  Give it a beat and confirm exactly one dispatch.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(fired.load(), 1);
}

// The runtime half of the cslint thread-affinity rule: mutator_allowed()
// is the predicate assert_on_loop_thread() aborts on in debug builds.

TEST(EventLoop, MutatorAllowedBeforeRunWhileRegistering) {
  // Pre-run registration (the LoopRunner contract) is legal from any thread:
  // no loop thread exists yet.
  EventLoop loop;
  EXPECT_TRUE(loop.mutator_allowed());
}

TEST(EventLoop, MutatorAllowedTracksTheLoopThread) {
  LoopRunner runner;
  runner.start();
  std::atomic<int> checks{0};
  std::atomic<bool> on_loop{false};
  runner.loop.post([&] {
    on_loop.store(runner.loop.mutator_allowed());
    checks.fetch_add(1);
  });
  EXPECT_TRUE(eventually([&] { return checks.load() == 1; }));
  EXPECT_TRUE(on_loop.load());             // the loop thread may mutate
  EXPECT_FALSE(runner.loop.mutator_allowed());  // this thread may not
  runner.loop.stop();
  runner.thread.join();
  // After run() returns the owner resets; teardown mutations are legal again.
  EXPECT_TRUE(runner.loop.mutator_allowed());
}

#ifndef NDEBUG
TEST(EventLoopDeathTest, OffLoopMutatorAbortsInDebugBuilds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LoopRunner runner;
  runner.start();
  std::atomic<bool> running{false};
  runner.loop.post([&] { running.store(true); });
  ASSERT_TRUE(eventually([&] { return running.load(); }));
  Pair pair;
  EXPECT_DEATH(runner.loop.add(pair.fd[0], EPOLLIN, [](std::uint32_t) {}),
               "loop-affine mutator entered off the loop thread");
}
#endif

// ------------------------------------------------------------------- Conn

struct ConnHarness {
  LoopRunner runner;
  Pair pair;
  std::unique_ptr<Conn> conn;
  std::mutex mutex;
  std::vector<std::string> frames;
  std::atomic<int> frame_batches{0};
  std::atomic<bool> overflowed{false};
  std::atomic<bool> eof{false};
  std::atomic<bool> closed{false};

  explicit ConnHarness(ConnLimits limits = {}, bool defer_eof = false) {
    Conn::Handlers handlers;
    handlers.on_frames = [this](std::vector<std::string>&& batch) {
      const std::lock_guard<std::mutex> lock(mutex);
      frame_batches.fetch_add(1);
      for (auto& f : batch) frames.push_back(std::move(f));
    };
    handlers.on_overflow = [this] { overflowed.store(true); };
    if (defer_eof) handlers.on_eof = [this] { eof.store(true); };
    handlers.on_closed = [this] { closed.store(true); };
    conn = std::make_unique<Conn>(runner.loop, pair.fd[0], limits,
                                  std::move(handlers));
    pair.fd[0] = -1;  // Conn owns it now
    runner.start();
  }

  ~ConnHarness() {
    // Stop the loop BEFORE ~Conn: Conn teardown must not race dispatch.
    runner.loop.stop();
    if (runner.thread.joinable()) runner.thread.join();
  }

  std::size_t frame_count() {
    const std::lock_guard<std::mutex> lock(mutex);
    return frames.size();
  }
  std::string frame(std::size_t i) {
    const std::lock_guard<std::mutex> lock(mutex);
    return frames.at(i);
  }
};

TEST(Conn, DeliversAllFramesOfOneWakeupAsOneBatch) {
  ConnHarness h;
  h.pair.send_peer("alpha\nbeta\r\ngamma\n");
  EXPECT_TRUE(eventually([&] { return h.frame_count() == 3; }));
  EXPECT_EQ(h.frame(0), "alpha");
  EXPECT_EQ(h.frame(1), "beta");  // '\r' stripped
  EXPECT_EQ(h.frame(2), "gamma");
  EXPECT_EQ(h.frame_batches.load(), 1);
}

TEST(Conn, HoldsPartialFrameUntilNewline) {
  ConnHarness h;
  h.pair.send_peer("incompl");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(h.frame_count(), 0u);
  h.pair.send_peer("ete\n");
  EXPECT_TRUE(eventually([&] { return h.frame_count() == 1; }));
  EXPECT_EQ(h.frame(0), "incomplete");
}

TEST(Conn, EmptyFramesAreDropped) {
  ConnHarness h;
  h.pair.send_peer("\n\r\none\n\n");
  EXPECT_TRUE(eventually([&] { return h.frame_count() == 1; }));
  EXPECT_EQ(h.frame(0), "one");
}

TEST(Conn, OverflowFiresOnceAndStopsReading) {
  ConnLimits limits;
  limits.max_frame = 8;
  ConnHarness h(limits);
  h.pair.send_peer(std::string(64, 'x'));
  EXPECT_TRUE(eventually([&] { return h.overflowed.load(); }));
  EXPECT_EQ(h.frame_count(), 0u);
  // The server's overflow handler sends an error then close_after_flush;
  // emulate it and confirm the error still reaches the peer.
  h.runner.loop.post([&] {
    h.conn->send("too long");
    h.conn->close_after_flush();
  });
  EXPECT_EQ(h.pair.read_peer(), "too long\n");
  EXPECT_TRUE(eventually([&] { return h.closed.load(); }));
}

TEST(Conn, SendRoundTripsWithNewline) {
  ConnHarness h;
  h.runner.loop.post([&] { h.conn->send("pong"); });
  EXPECT_EQ(h.pair.read_peer(), "pong\n");
}

TEST(Conn, PeerEofClosesWhenNoEofHandler) {
  ConnHarness h;
  ::shutdown(h.pair.fd[1], SHUT_WR);
  EXPECT_TRUE(eventually([&] { return h.closed.load(); }));
  EXPECT_TRUE(h.conn->closed());
}

TEST(Conn, DeferredEofLetsOwnerFinishWrites) {
  ConnHarness h({}, /*defer_eof=*/true);
  h.pair.send_peer("req\n");
  EXPECT_TRUE(eventually([&] { return h.frame_count() == 1; }));
  ::shutdown(h.pair.fd[1], SHUT_WR);
  EXPECT_TRUE(eventually([&] { return h.eof.load(); }));
  EXPECT_FALSE(h.closed.load());  // owner decides when to close
  h.runner.loop.post([&] {
    h.conn->send("late response");
    h.conn->close_after_flush();
  });
  EXPECT_EQ(h.pair.read_peer(), "late response\n");
  EXPECT_TRUE(eventually([&] { return h.closed.load(); }));
}

TEST(Conn, BackpressureBoundsTheWriteQueueAndDrains) {
  ConnLimits limits;
  limits.max_write_queue = 4096;
  ConnHarness h(limits);
  // Queue far more than the socket buffer + queue bound will take at once.
  constexpr int kFrames = 200;
  const std::string payload(1024, 'y');
  std::atomic<bool> queued{false};
  h.runner.loop.post([&] {
    for (int i = 0; i < kFrames; ++i) h.conn->send(payload);
    queued.store(true);
  });
  EXPECT_TRUE(eventually([&] { return queued.load(); }));
  // Drain from the peer side; every byte must arrive despite the bound.
  std::size_t received = 0;
  const std::size_t expected =
      static_cast<std::size_t>(kFrames) * (payload.size() + 1);
  while (received < expected) {
    const std::string chunk = h.pair.read_peer(16 * 1024);
    ASSERT_FALSE(chunk.empty()) << "peer EOF after " << received << " bytes";
    received += chunk.size();
  }
  EXPECT_EQ(received, expected);
  // writes_pending() is loop-thread state; probe it via a posted task.
  bool pending = true;
  EXPECT_TRUE(eventually([&] {
    std::atomic<int> probe{-1};
    h.runner.loop.post(
        [&] { probe.store(h.conn->writes_pending() ? 1 : 0); });
    if (!eventually([&] { return probe.load() >= 0; }, 1000)) return false;
    pending = probe.load() == 1;
    return !pending;
  }));
  EXPECT_FALSE(pending);
}

TEST(Conn, IdleClockCountsFromLastCompleteFrame) {
  ConnHarness h;
  h.pair.send_peer("whole\n");
  EXPECT_TRUE(eventually([&] { return h.frame_count() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Partial bytes must NOT refresh the idle clock (slow-loris defense).
  h.pair.send_peer("dribble");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::atomic<long> idle_ms{-1};
  h.runner.loop.post([&] {
    idle_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                      h.conn->idle_for())
                      .count());
  });
  EXPECT_TRUE(eventually([&] { return idle_ms.load() >= 0; }));
  EXPECT_GE(idle_ms.load(), 50);
}

TEST(Conn, CloseFiresOnClosedExactlyOnce) {
  ConnHarness h;
  std::atomic<bool> done{false};
  h.runner.loop.post([&] {
    h.conn->close();
    h.conn->close();  // idempotent
    done.store(true);
  });
  EXPECT_TRUE(eventually([&] { return done.load(); }));
  EXPECT_TRUE(h.closed.load());
  EXPECT_EQ(h.pair.read_peer(), "");  // peer sees EOF
}

}  // namespace
}  // namespace cs::net
