#include "numerics/stats.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "numerics/rng.hpp"

namespace cs::num {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  RandomStream rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  // Welford must survive a huge common offset.
  RunningStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(ConfidenceInterval, CoversTrueMeanUsually) {
  // 95% CI over repeated experiments: coverage should be near 95%.
  RandomStream rng(7);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.normal(10.0, 3.0));
    if (confidence_interval(s, 1.96).contains(10.0)) ++covered;
  }
  EXPECT_GT(covered, trials * 0.90);
  EXPECT_LT(covered, trials * 0.99);
}

TEST(BatchHelpers, MeanVarianceQuantile) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(BatchHelpers, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 2.0), std::invalid_argument);
}

TEST(KsStatistic, IdenticalSamplesNearZero) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(ks_statistic(a, a), 0.0, 1e-12);
}

TEST(KsStatistic, DisjointSamplesNearOne) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{10.0, 11.0, 12.0};
  EXPECT_NEAR(ks_statistic(a, b), 1.0, 1e-12);
}

TEST(KsStatisticCdf, UniformSampleAgainstUniformCdf) {
  RandomStream rng(99);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.uniform01());
  const double d =
      ks_statistic_cdf(sample, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_LT(d, 0.03);  // ~1.36/sqrt(n) at 95%
}

TEST(KsStatisticCdf, DetectsWrongModel) {
  RandomStream rng(99);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.exponential(1.0));
  // Compare an exponential sample against a uniform CDF on [0, 5]:
  const double d = ks_statistic_cdf(
      sample, [](double x) { return std::clamp(x / 5.0, 0.0, 1.0); });
  EXPECT_GT(d, 0.2);
}

TEST(RandomStream, DeterministicPerSeedAndStream) {
  RandomStream a(123, 5), b(123, 5), c(123, 6);
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  EXPECT_NE(a.uniform01(), c.uniform01());
}

TEST(RandomStream, Uniform01InOpenInterval) {
  RandomStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, ExponentialMean) {
  RandomStream rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(0.25));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

}  // namespace
}  // namespace cs::num
