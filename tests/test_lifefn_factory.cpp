#include "lifefn/factory.hpp"

#include <gtest/gtest.h>

#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Factory, BuildsUniform) {
  const auto p = make_life_function("uniform:L=250");
  ASSERT_NE(dynamic_cast<UniformRisk*>(p.get()), nullptr);
  EXPECT_DOUBLE_EQ(*p->lifespan(), 250.0);
}

TEST(Factory, BuildsPolynomialRisk) {
  const auto p = make_life_function("polyrisk:d=3,L=100");
  const auto* poly = dynamic_cast<PolynomialRisk*>(p.get());
  ASSERT_NE(poly, nullptr);
  EXPECT_EQ(poly->degree(), 3);
  EXPECT_DOUBLE_EQ(poly->L(), 100.0);
}

TEST(Factory, BuildsGeometricLifespanByA) {
  const auto p = make_life_function("geomlife:a=1.25");
  const auto* g = dynamic_cast<GeometricLifespan*>(p.get());
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->a(), 1.25);
}

TEST(Factory, BuildsGeometricLifespanByHalfLife) {
  const auto p = make_life_function("geomlife:half=100");
  EXPECT_NEAR(p->survival(100.0), 0.5, 1e-12);
}

TEST(Factory, BuildsGeometricRisk) {
  const auto p = make_life_function("geomrisk:L=42");
  ASSERT_NE(dynamic_cast<GeometricRisk*>(p.get()), nullptr);
  EXPECT_DOUBLE_EQ(*p->lifespan(), 42.0);
}

TEST(Factory, BuildsWeibull) {
  const auto p = make_life_function("weibull:k=1.5,scale=30");
  const auto* w = dynamic_cast<Weibull*>(p.get());
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->k(), 1.5);
  EXPECT_DOUBLE_EQ(w->scale(), 30.0);
}

TEST(Factory, BuildsPareto) {
  const auto p = make_life_function("pareto:d=2");
  ASSERT_NE(dynamic_cast<ParetoTail*>(p.get()), nullptr);
}

TEST(Factory, ParameterOrderIrrelevant) {
  const auto a = make_life_function("weibull:k=2,scale=10");
  const auto b = make_life_function("weibull:scale=10,k=2");
  EXPECT_EQ(a->name(), b->name());
}

TEST(Factory, UnknownFamilyThrows) {
  EXPECT_THROW(make_life_function("gaussian:mu=1"), std::invalid_argument);
  EXPECT_THROW(make_life_function(""), std::invalid_argument);
}

TEST(Factory, MissingParameterThrows) {
  EXPECT_THROW(make_life_function("uniform"), std::invalid_argument);
  EXPECT_THROW(make_life_function("polyrisk:d=2"), std::invalid_argument);
  EXPECT_THROW(make_life_function("geomlife"), std::invalid_argument);
}

TEST(Factory, MalformedValueThrows) {
  EXPECT_THROW(make_life_function("uniform:L=abc"), std::invalid_argument);
  EXPECT_THROW(make_life_function("uniform:L"), std::invalid_argument);
  EXPECT_THROW(make_life_function("uniform:L=10x"), std::invalid_argument);
}

TEST(Factory, InvalidParameterValuePropagates) {
  EXPECT_THROW(make_life_function("uniform:L=-5"), std::invalid_argument);
  EXPECT_THROW(make_life_function("geomlife:a=0.9"), std::invalid_argument);
}

TEST(Factory, BuildsLogNormal) {
  const auto p = make_life_function("lognormal:mu=3,sigma=0.8");
  const auto* ln = dynamic_cast<LogNormal*>(p.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_DOUBLE_EQ(ln->mu(), 3.0);
  EXPECT_DOUBLE_EQ(ln->sigma(), 0.8);
}

TEST(Factory, KnownFamiliesListedAndConstructible) {
  const auto families = known_life_function_families();
  EXPECT_EQ(families.size(), 9u);
  // Every listed family has at least one valid spec exercised above.
  for (const auto& f : families) {
    SCOPED_TRACE(f);
    EXPECT_FALSE(f.empty());
  }
}

TEST(Factory, BuildsPiecewiseLinear) {
  const auto p = make_life_function("pwl:0:1;50:0.5;100:0");
  ASSERT_NE(dynamic_cast<PiecewiseLinear*>(p.get()), nullptr);
  EXPECT_NEAR(p->survival(25.0), 0.75, 1e-12);
}

TEST(Factory, BuildsEmpirical) {
  const auto p = make_life_function("empirical:0:1;10:0.9;40:0.3;60:0");
  ASSERT_NE(dynamic_cast<EmpiricalLifeFunction*>(p.get()), nullptr);
  EXPECT_NEAR(p->survival(10.0), 0.9, 1e-12);
}

TEST(Factory, MalformedKnotsThrow) {
  EXPECT_THROW(make_life_function("pwl:"), std::invalid_argument);
  EXPECT_THROW(make_life_function("pwl:0:1;50"), std::invalid_argument);
  EXPECT_THROW(make_life_function("pwl:0:1;abc:0"), std::invalid_argument);
}

// spec() must be a fixed point of the factory: make_life_function(spec())
// reconstructs the same function, and its spec() is byte-identical.
TEST(FactorySpec, RoundTripIsAFixedPoint) {
  const std::vector<std::string> specs = {
      "uniform:L=480",
      "polyrisk:d=3,L=100",
      "geomlife:a=1.25",
      "geomlife:half=100",
      "geomrisk:L=42",
      "weibull:k=1.5,scale=30",
      "lognormal:mu=3,sigma=0.8",
      "pareto:d=2",
      "pwl:0:1;50:0.5;100:0",
      "empirical:0:1;10:0.9;40:0.3;60:0",
  };
  for (const auto& s : specs) {
    SCOPED_TRACE(s);
    const auto p = make_life_function(s);
    const std::string canon = p->spec();
    const auto q = make_life_function(canon);
    EXPECT_EQ(q->spec(), canon);  // fixed point
    // And the reconstructed function is the same function.
    for (const double t : {0.5, 1.0, 7.0, 25.0, 90.0}) {
      EXPECT_DOUBLE_EQ(p->survival(t), q->survival(t));
    }
  }
}

TEST(FactorySpec, EquivalentParameterizationsShareOneSpec) {
  const auto by_half = make_life_function("geomlife:half=100");
  const auto by_a = make_life_function(by_half->spec());
  EXPECT_EQ(by_half->spec(), by_a->spec());
}

TEST(FactorySpec, SpecNumberIsShortestExactDecimal) {
  EXPECT_EQ(spec_number(480.0), "480");
  EXPECT_EQ(spec_number(0.5), "0.5");
  EXPECT_EQ(spec_number(1.0 / 3.0), "0.3333333333333333");
  // Round-trips exactly for awkward doubles.
  const double v = 1.0069555500567189;
  EXPECT_DOUBLE_EQ(std::stod(spec_number(v)), v);
}

}  // namespace
}  // namespace cs
