#include "lifefn/factory.hpp"

#include <gtest/gtest.h>

#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Factory, BuildsUniform) {
  const auto p = make_life_function("uniform:L=250");
  ASSERT_NE(dynamic_cast<UniformRisk*>(p.get()), nullptr);
  EXPECT_DOUBLE_EQ(*p->lifespan(), 250.0);
}

TEST(Factory, BuildsPolynomialRisk) {
  const auto p = make_life_function("polyrisk:d=3,L=100");
  const auto* poly = dynamic_cast<PolynomialRisk*>(p.get());
  ASSERT_NE(poly, nullptr);
  EXPECT_EQ(poly->degree(), 3);
  EXPECT_DOUBLE_EQ(poly->L(), 100.0);
}

TEST(Factory, BuildsGeometricLifespanByA) {
  const auto p = make_life_function("geomlife:a=1.25");
  const auto* g = dynamic_cast<GeometricLifespan*>(p.get());
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->a(), 1.25);
}

TEST(Factory, BuildsGeometricLifespanByHalfLife) {
  const auto p = make_life_function("geomlife:half=100");
  EXPECT_NEAR(p->survival(100.0), 0.5, 1e-12);
}

TEST(Factory, BuildsGeometricRisk) {
  const auto p = make_life_function("geomrisk:L=42");
  ASSERT_NE(dynamic_cast<GeometricRisk*>(p.get()), nullptr);
  EXPECT_DOUBLE_EQ(*p->lifespan(), 42.0);
}

TEST(Factory, BuildsWeibull) {
  const auto p = make_life_function("weibull:k=1.5,scale=30");
  const auto* w = dynamic_cast<Weibull*>(p.get());
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->k(), 1.5);
  EXPECT_DOUBLE_EQ(w->scale(), 30.0);
}

TEST(Factory, BuildsPareto) {
  const auto p = make_life_function("pareto:d=2");
  ASSERT_NE(dynamic_cast<ParetoTail*>(p.get()), nullptr);
}

TEST(Factory, ParameterOrderIrrelevant) {
  const auto a = make_life_function("weibull:k=2,scale=10");
  const auto b = make_life_function("weibull:scale=10,k=2");
  EXPECT_EQ(a->name(), b->name());
}

TEST(Factory, UnknownFamilyThrows) {
  EXPECT_THROW(make_life_function("gaussian:mu=1"), std::invalid_argument);
  EXPECT_THROW(make_life_function(""), std::invalid_argument);
}

TEST(Factory, MissingParameterThrows) {
  EXPECT_THROW(make_life_function("uniform"), std::invalid_argument);
  EXPECT_THROW(make_life_function("polyrisk:d=2"), std::invalid_argument);
  EXPECT_THROW(make_life_function("geomlife"), std::invalid_argument);
}

TEST(Factory, MalformedValueThrows) {
  EXPECT_THROW(make_life_function("uniform:L=abc"), std::invalid_argument);
  EXPECT_THROW(make_life_function("uniform:L"), std::invalid_argument);
  EXPECT_THROW(make_life_function("uniform:L=10x"), std::invalid_argument);
}

TEST(Factory, InvalidParameterValuePropagates) {
  EXPECT_THROW(make_life_function("uniform:L=-5"), std::invalid_argument);
  EXPECT_THROW(make_life_function("geomlife:a=0.9"), std::invalid_argument);
}

TEST(Factory, BuildsLogNormal) {
  const auto p = make_life_function("lognormal:mu=3,sigma=0.8");
  const auto* ln = dynamic_cast<LogNormal*>(p.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_DOUBLE_EQ(ln->mu(), 3.0);
  EXPECT_DOUBLE_EQ(ln->sigma(), 0.8);
}

TEST(Factory, KnownFamiliesListedAndConstructible) {
  const auto families = known_life_function_families();
  EXPECT_EQ(families.size(), 7u);
  // Every listed family has at least one valid spec exercised above.
  for (const auto& f : families) {
    SCOPED_TRACE(f);
    EXPECT_FALSE(f.empty());
  }
}

}  // namespace
}  // namespace cs
