// The greedy recipe of Section 6 and its known strengths/weaknesses.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "core/expected_work.hpp"
#include "core/greedy.hpp"
#include "core/guideline.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Greedy, RequiresPositiveC) {
  const UniformRisk p(100.0);
  EXPECT_THROW(greedy_schedule(p, 0.0), std::invalid_argument);
}

TEST(Greedy, FirstPeriodMaximizesMarginalGain) {
  // For a^{-t} the per-period gain (t-c) a^{-t} peaks at t = c + 1/ln a.
  const GeometricLifespan p(1.05);
  const double c = 2.0;
  const auto g = greedy_schedule(p, c);
  ASSERT_FALSE(g.schedule.empty());
  EXPECT_NEAR(g.schedule[0], c + 1.0 / p.ln_a(), 1e-3 * g.schedule[0]);
}

TEST(Greedy, MemorylessGivesEqualPeriods) {
  const GeometricLifespan p(1.03);
  const auto g = greedy_schedule(p, 1.0);
  ASSERT_GE(g.schedule.size(), 3u);
  EXPECT_NEAR(g.schedule[1], g.schedule[0], 1e-4 * g.schedule[0]);
  EXPECT_NEAR(g.schedule[2], g.schedule[0], 1e-4 * g.schedule[0]);
}

TEST(Greedy, SuboptimalOnUniformRisk) {
  // Section 6: greedy is NOT optimal for the uniform-risk scenario — it
  // front-loads a huge first chunk.  Measured gap is large (~20%+).
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = greedy_schedule(p, c);
  const auto opt = bclr_uniform_optimal(p, c);
  EXPECT_LT(g.expected, 0.85 * opt.expected);
  EXPECT_GT(g.schedule[0], 2.0 * opt.t0);  // over-commits up front
}

TEST(Greedy, SuboptimalOnGeometricLifespan) {
  // Greedy's myopic period c + 1/ln a over-commits relative to the BCLR
  // optimum t* (which solves t + a^{-t}/ln a = c + 1/ln a < greedy period).
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto g = greedy_schedule(p, c);
  const auto opt = bclr_geometric_lifespan_optimal(p, c);
  EXPECT_GT(g.schedule[0], opt.t0);
  EXPECT_LT(g.expected, opt.expected);
  EXPECT_GT(g.expected, 0.5 * opt.expected);  // but not catastrophic
}

TEST(Greedy, ExpectedMatchesRecomputation) {
  const PolynomialRisk p(3, 200.0);
  const auto g = greedy_schedule(p, 2.0);
  EXPECT_NEAR(g.expected, expected_work(g.schedule, p, 2.0),
              1e-9 * std::max(1.0, g.expected));
}

TEST(Greedy, StopsWhenGainExhausted) {
  const UniformRisk p(10.0);
  GreedyOptions opt;
  opt.gain_tol = 1e-9;
  const auto g = greedy_schedule(p, 1.0, opt);
  // Bounded horizon: the schedule must be finite and fit inside L.
  EXPECT_LE(g.schedule.total_duration(), 10.0 + 1e-6);
  EXPECT_GT(g.schedule.size(), 0u);
}

TEST(Greedy, MaxPeriodsHonored) {
  const GeometricLifespan p(1.001);
  GreedyOptions opt;
  opt.max_periods = 3;
  const auto g = greedy_schedule(p, 0.5, opt);
  EXPECT_LE(g.schedule.size(), 3u);
}

// Property: greedy is always feasible and never beats the guideline search
// (which subsumes better t0 choices), but achieves a nontrivial fraction.
struct GreedyCase {
  const char* spec;
  double c;
  double min_fraction;
};

class GreedyVsGuideline : public ::testing::TestWithParam<GreedyCase> {};

TEST_P(GreedyVsGuideline, FractionOfGuideline) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = greedy_schedule(*p, c);
  const auto guide = GuidelineScheduler(*p, c).run();
  EXPECT_LE(g.expected, guide.expected * (1.0 + 1e-6));
  EXPECT_GE(g.expected, GetParam().min_fraction * guide.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyVsGuideline,
    ::testing::Values(GreedyCase{"uniform:L=480", 4.0, 0.5},
                      GreedyCase{"polyrisk:d=3,L=300", 2.0, 0.5},
                      GreedyCase{"geomlife:a=1.02", 1.0, 0.5},
                      GreedyCase{"geomrisk:L=40", 1.0, 0.5},
                      GreedyCase{"weibull:k=1.5,scale=80", 1.0, 0.5}));

}  // namespace
}  // namespace cs
