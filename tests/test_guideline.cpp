// The GuidelineScheduler end-to-end: bracket + recurrence + t0 search.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "baselines/oblivious.hpp"
#include "core/dp_reference.hpp"
#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Guideline, MatchesBclrOptimumOnUniformRisk) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto opt = bclr_uniform_optimal(p, c);
  EXPECT_NEAR(g.expected, opt.expected, 1e-4 * opt.expected);
  EXPECT_EQ(g.schedule.size(), opt.schedule.size());
  EXPECT_NEAR(g.chosen_t0, opt.t0, 0.02 * opt.t0);
  // And t0* ~ sqrt(2cL) (eq. 4.5).
  EXPECT_NEAR(g.chosen_t0, std::sqrt(2.0 * c * 480.0), 0.05 * g.chosen_t0);
}

TEST(Guideline, MatchesBclrOptimumOnGeometricLifespan) {
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto opt = bclr_geometric_lifespan_optimal(p, c);
  EXPECT_NEAR(g.expected, opt.expected, 1e-4 * opt.expected);
  EXPECT_NEAR(g.chosen_t0, opt.t0, 0.05 * opt.t0);
}

TEST(Guideline, MatchesBclrOptimumOnGeometricRisk) {
  const GeometricRisk p(40.0);
  const double c = 1.0;
  const auto g = GuidelineScheduler(p, c).run();
  const auto opt = bclr_geometric_risk_optimal(p, c);
  // The [3] recurrence is itself approximate here; guideline should do at
  // least as well.
  EXPECT_GE(g.expected, opt.expected * (1.0 - 1e-6));
}

TEST(Guideline, ChosenT0WithinBracket) {
  const PolynomialRisk p(3, 600.0);
  const auto g = GuidelineScheduler(p, 2.0).run();
  EXPECT_GE(g.chosen_t0, g.bracket.lower - 1e-9);
  EXPECT_LE(g.chosen_t0, g.bracket.upper + 1e-9);
}

TEST(Guideline, T0RulesProduceDifferentSchedules) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  GuidelineOptions lo_opt;
  lo_opt.rule = T0Rule::LowerBound;
  GuidelineOptions hi_opt;
  hi_opt.rule = T0Rule::UpperBound;
  GuidelineOptions mid_opt;
  mid_opt.rule = T0Rule::Midpoint;
  const auto lo = GuidelineScheduler(p, c, lo_opt).run();
  const auto hi = GuidelineScheduler(p, c, hi_opt).run();
  const auto mid = GuidelineScheduler(p, c, mid_opt).run();
  const auto best = GuidelineScheduler(p, c).run();
  EXPECT_LT(lo.chosen_t0, hi.chosen_t0);
  EXPECT_NEAR(mid.chosen_t0, 0.5 * (lo.chosen_t0 + hi.chosen_t0), 1e-9);
  // The searched rule dominates all fixed rules.
  EXPECT_GE(best.expected, lo.expected - 1e-9);
  EXPECT_GE(best.expected, hi.expected - 1e-9);
  EXPECT_GE(best.expected, mid.expected - 1e-9);
}

TEST(Guideline, RunFromT0Respected) {
  const UniformRisk p(480.0);
  const GuidelineScheduler s(p, 4.0);
  const auto g = s.run_from_t0(55.0);
  EXPECT_DOUBLE_EQ(g.chosen_t0, 55.0);
  EXPECT_DOUBLE_EQ(g.schedule[0], 55.0);
  EXPECT_THROW(s.run_from_t0(4.0), std::invalid_argument);
}

TEST(Guideline, T0RuleNames) {
  EXPECT_STREQ(to_string(T0Rule::SearchBracket), "search");
  EXPECT_STREQ(to_string(T0Rule::LowerBound), "lower");
  EXPECT_STREQ(to_string(T0Rule::UpperBound), "upper");
  EXPECT_STREQ(to_string(T0Rule::Midpoint), "midpoint");
}

// Headline property (exp5's backbone): the guideline schedule is within a
// hair of the DP reference optimum and dominates the oblivious baselines.
struct GuidelineCase {
  const char* spec;
  double c;
};

class GuidelineQuality : public ::testing::TestWithParam<GuidelineCase> {};

TEST_P(GuidelineQuality, WithinOnePercentOfDpOptimum) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = GuidelineScheduler(*p, c).run();
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(*p, c, opt);
  EXPECT_GE(g.expected, 0.99 * dp.expected)
      << "guideline " << g.expected << " vs dp " << dp.expected;
}

TEST_P(GuidelineQuality, BeatsOrTiesBestFixedChunk) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = GuidelineScheduler(*p, c).run();
  const auto fixed = best_fixed_chunk(*p, c);
  EXPECT_GE(g.expected, fixed.expected * (1.0 - 1e-6));
}

TEST_P(GuidelineQuality, BeatsAllAtOnce) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = GuidelineScheduler(*p, c).run();
  EXPECT_GT(g.expected, all_at_once(*p, c).expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuidelineQuality,
    ::testing::Values(GuidelineCase{"uniform:L=480", 4.0},
                      GuidelineCase{"uniform:L=100", 0.5},
                      GuidelineCase{"polyrisk:d=2,L=400", 2.0},
                      GuidelineCase{"polyrisk:d=5,L=400", 2.0},
                      GuidelineCase{"geomlife:a=1.01", 1.0},
                      GuidelineCase{"geomlife:a=1.1", 0.5},
                      GuidelineCase{"geomrisk:L=25", 1.0},
                      GuidelineCase{"geomrisk:L=50", 2.0},
                      GuidelineCase{"weibull:k=1.5,scale=100", 1.0}));

}  // namespace
}  // namespace cs
