// Unit tests for the cslint rule engine (tools/cslint).  Every rule gets at
// least one positive (fires) and one negative (stays quiet) case, plus the
// comment/string stripper and the allow-annotation mechanism the rules sit
// on.
#include "cslint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "flow.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;
using cs::lint::lint_source;
using cs::lint::Violation;

namespace {

std::vector<std::string> rules_of(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  out.reserve(vs.size());
  for (const auto& v : vs) out.push_back(v.rule);
  return out;
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  for (const auto& v : vs)
    if (v.rule == rule) return true;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// strip_comments_and_strings
// ---------------------------------------------------------------------------

TEST(Strip, LineCommentBlanked) {
  const std::string out =
      cs::lint::strip_comments_and_strings("int x; // x == 1.0\nint y;");
  EXPECT_EQ(out.find("=="), std::string::npos);
  EXPECT_NE(out.find("int y;"), std::string::npos);
}

TEST(Strip, BlockCommentKeepsNewlines) {
  const std::string src = "a /* one\ntwo\nthree */ b";
  const std::string out = cs::lint::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(out.find("two"), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(Strip, StringAndCharContentsBlanked) {
  const std::string out = cs::lint::strip_comments_and_strings(
      "auto s = \"std::rand()\"; char c = '\\''; auto t = 'x';");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  // Quotes themselves survive so the line structure stays recognizable.
  EXPECT_NE(out.find('"'), std::string::npos);
}

TEST(Strip, RawStringBlanked) {
  const std::string out = cs::lint::strip_comments_and_strings(
      "auto re = R\"(a == 1.0)\"; int k;");
  EXPECT_EQ(out.find("=="), std::string::npos);
  EXPECT_NE(out.find("int k;"), std::string::npos);
}

TEST(Strip, EscapedQuoteDoesNotEndString) {
  const std::string out = cs::lint::strip_comments_and_strings(
      "auto s = \"a\\\"b == 1.0\"; int m;");
  EXPECT_EQ(out.find("=="), std::string::npos);
  EXPECT_NE(out.find("int m;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// allow annotations
// ---------------------------------------------------------------------------

TEST(Allow, MatchesNamedRule) {
  EXPECT_TRUE(cs::lint::line_allows("x; // cslint: allow(float-eq)",
                                    "float-eq"));
  EXPECT_TRUE(cs::lint::line_allows(
      "x; // cslint: allow(raw-lock, float-eq) reason", "float-eq"));
  EXPECT_FALSE(cs::lint::line_allows("x; // cslint: allow(raw-lock)",
                                     "float-eq"));
  EXPECT_FALSE(cs::lint::line_allows("plain line", "float-eq"));
}

TEST(Allow, SuppressesOnSameLine) {
  const auto vs = lint_source(
      "src/core/x.cpp",
      "bool f(double a) { return a == 1.0; }  // cslint: allow(float-eq)\n");
  EXPECT_FALSE(has_rule(vs, "float-eq")) << ::testing::PrintToString(
      rules_of(vs));
}

TEST(Allow, SuppressesFromPrecedingLine) {
  const auto vs = lint_source("src/core/x.cpp",
                              "// cslint: allow(float-eq) legacy exact check\n"
                              "bool f(double a) { return a == 1.0; }\n");
  EXPECT_FALSE(has_rule(vs, "float-eq"));
}

// ---------------------------------------------------------------------------
// raw-lock
// ---------------------------------------------------------------------------

TEST(RawLock, FlagsBareMutexLockUnlock) {
  EXPECT_TRUE(has_rule(
      lint_source("src/obs/x.cpp", "void f() { mutex_.lock(); }\n"),
      "raw-lock"));
  EXPECT_TRUE(has_rule(
      lint_source("src/obs/x.cpp", "void f() { shard->mutex.unlock(); }\n"),
      "raw-lock"));
}

TEST(RawLock, AllowsRaiiGuardsAndWeakPtr) {
  EXPECT_FALSE(has_rule(
      lint_source("src/obs/x.cpp",
                  "void f() { std::lock_guard<std::mutex> lock(mutex_); }\n"),
      "raw-lock"));
  // Relocking a std::unique_lock by its conventional name is RAII-managed.
  EXPECT_FALSE(has_rule(
      lint_source("src/obs/x.cpp", "void f() { lock.lock(); lk.unlock(); }\n"),
      "raw-lock"));
  // std::weak_ptr::lock() is not a mutex operation.
  EXPECT_FALSE(has_rule(
      lint_source("src/obs/x.cpp", "auto sp = weak_self.lock();\n"),
      "raw-lock"));
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

TEST(FloatEq, FlagsLiteralComparisonsInScope) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "if (u == 1.0) return 0.0;\n"),
      "float-eq"));
  EXPECT_TRUE(has_rule(
      lint_source("src/numerics/y.cpp", "bool b = v != .5;\n"), "float-eq"));
  EXPECT_TRUE(has_rule(
      lint_source("src/numerics/y.cpp", "bool b = 1e-9 == eps;\n"),
      "float-eq"));
}

TEST(FloatEq, IgnoresIntegersVariablesAndOutOfScope) {
  // Integer literal: not a float comparison.
  EXPECT_FALSE(has_rule(lint_source("src/core/x.cpp", "if (n == 0) f();\n"),
                        "float-eq"));
  // Two variables: the text rule cannot judge types, stays quiet.
  EXPECT_FALSE(has_rule(lint_source("src/core/x.cpp", "if (a == b) f();\n"),
                        "float-eq"));
  // Same code outside src/core + src/numerics is out of scope.
  EXPECT_FALSE(has_rule(
      lint_source("src/obs/x.cpp", "if (u == 1.0) return 0.0;\n"),
      "float-eq"));
  // Comments never fire.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp", "int n;  // tolerance == 1.0 here\n"),
      "float-eq"));
}

// ---------------------------------------------------------------------------
// std-rand
// ---------------------------------------------------------------------------

TEST(StdRand, FlagsBannedSources) {
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", "int r = std::rand();\n"), "std-rand"));
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", "srand(42);\n"), "std-rand"));
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", "auto now = time(nullptr);\n"),
      "std-rand"));
}

TEST(StdRand, IgnoresLookalikes) {
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/x.cpp", "num::RandomStream rng(seed, stream);\n"),
      "std-rand"));
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/x.cpp", "auto s = strand(io);\n"), "std-rand"));
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/x.cpp", "double t = sim_time(nullptr_state);\n"),
      "std-rand"));
}

// ---------------------------------------------------------------------------
// positive-sub
// ---------------------------------------------------------------------------

TEST(PositiveSub, FlagsBarePeriodArithmeticInScope) {
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", "out.work += t - c;\n"), "positive-sub"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "double g = (s[i] - c) * surv;\n"),
      "positive-sub"));
}

TEST(PositiveSub, IgnoresSanctionedAndOutOfScopeForms) {
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/x.cpp", "out.work += positive_sub(t, c);\n"),
      "positive-sub"));
  // Unary minus after a keyword is not a subtraction.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp", "return -c * pv / dv;\n"),
      "positive-sub"));
  // Scalar algebra with a numeric LHS is not period arithmetic.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp", "double f = 1.0 - c / t;\n"),
      "positive-sub"));
  // Other identifiers are untouched.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp", "double d = total - cost;\n"),
      "positive-sub"));
  // Out of scope directory.
  EXPECT_FALSE(has_rule(
      lint_source("src/engine/x.cpp", "double w = t - c;\n"), "positive-sub"));
}

// ---------------------------------------------------------------------------
// std-function
// ---------------------------------------------------------------------------

TEST(StdFunction, FlagsStdFunctionInNumericCore) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "double solve(const std::function<double(double)>& f);\n"),
      "std-function"));
  EXPECT_TRUE(has_rule(
      lint_source("src/numerics/x.hpp",
                  "std::function<double(double)> fn_;\n"),
      "std-function"));
  // Whitespace around :: still matches.
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "std :: function<void()> cb;\n"),
      "std-function"));
}

TEST(StdFunction, IgnoresOutOfScopeCommentsAndLookalikes) {
  // Out of scope: the owning erasure is fine in the service layers.
  EXPECT_FALSE(has_rule(
      lint_source("src/engine/x.hpp", "std::function<void()> hook_;\n"),
      "std-function"));
  EXPECT_FALSE(has_rule(
      lint_source("src/net/x.hpp", "std::function<void()> on_eof;\n"),
      "std-function"));
  // Comments and strings are stripped before rules run.
  EXPECT_FALSE(has_rule(
      lint_source("src/numerics/x.hpp",
                  "// drop-in replacement for std::function<double(double)>\n"),
      "std-function"));
  // Other identifiers containing "function" are untouched.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp", "my::function<double> f;\n"),
      "std-function"));
}

TEST(StdFunction, AllowAnnotationSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp",
                  "// cslint: allow(std-function) intentional owning hook\n"
                  "std::function<void()> hook_;\n"),
      "std-function"));
}

// ---------------------------------------------------------------------------
// atomic-order
// ---------------------------------------------------------------------------

TEST(AtomicOrder, FlagsRelaxedInsideCompareExchange) {
  EXPECT_TRUE(has_rule(
      lint_source("src/steal/x.cpp",
                  "ok = top_.compare_exchange_strong(t, t + 1, "
                  "std::memory_order_relaxed);\n"),
      "atomic-order"));
}

TEST(AtomicOrder, FlagsRelaxedInMultiLineCallStatement) {
  // The CAS statement spans lines; the relaxed order sits two lines below
  // the call but before the terminating ';'.
  EXPECT_TRUE(has_rule(
      lint_source("src/steal/x.cpp",
                  "while (!value.compare_exchange_weak(\n"
                  "    cur,\n"
                  "    cur + v, std::memory_order_relaxed)) {\n"
                  "}\n"),
      "atomic-order"));
}

TEST(AtomicOrder, AllowAnnotationSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_source("src/steal/x.cpp",
                  "while (!value.compare_exchange_weak(\n"
                  "    cur, cur + v,\n"
                  "    // cslint: allow(atomic-order) audited\n"
                  "    std::memory_order_relaxed)) {\n"
                  "}\n"),
      "atomic-order"));
}

TEST(AtomicOrder, IgnoresRelaxedOutsideCompareExchange) {
  // Plain relaxed loads/stores/fetch_adds are idiomatic and stay quiet.
  EXPECT_FALSE(has_rule(
      lint_source("src/steal/x.cpp",
                  "n.fetch_add(1, std::memory_order_relaxed);\n"
                  "auto v = top_.load(std::memory_order_relaxed);\n"),
      "atomic-order"));
  // A relaxed op in the statement *after* a completed CAS is out of scope.
  EXPECT_FALSE(has_rule(
      lint_source("src/steal/x.cpp",
                  "ok = top_.compare_exchange_strong(t, t + 1);\n"
                  "n.fetch_add(1, std::memory_order_relaxed);\n"),
      "atomic-order"));
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(PragmaOnce, FlagsHeaderWithoutGuard) {
  const auto vs = lint_source("src/core/x.hpp", "int f();\n");
  EXPECT_TRUE(has_rule(vs, "pragma-once"));
}

TEST(PragmaOnce, AcceptsGuardAfterComments) {
  const auto vs = lint_source("src/core/x.hpp",
                              "// file comment\n#pragma once\nint f();\n");
  EXPECT_FALSE(has_rule(vs, "pragma-once"));
  // .cpp files are exempt.
  EXPECT_FALSE(has_rule(lint_source("src/core/x.cpp", "int f() { return 1; }"),
                        "pragma-once"));
}

// ---------------------------------------------------------------------------
// header-standalone (needs a real compiler; uses the same default the CLI
// falls back to when --compiler is not given)
// ---------------------------------------------------------------------------

class HeaderStandalone : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cslint-test-" + std::to_string(::getpid()));
    fs::create_directories(dir_ / "src" / "demo");
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path write(const std::string& rel, const std::string& body) {
    const fs::path p = dir_ / rel;
    std::ofstream(p) << body;
    return p;
  }

  fs::path dir_;
};

TEST_F(HeaderStandalone, GoodHeaderPassesBadHeaderFails) {
  const fs::path good = write("src/demo/good.hpp",
                              "#pragma once\n#include <vector>\n"
                              "inline std::vector<int> v() { return {}; }\n");
  // Uses std::vector without including it: not self-contained.
  const fs::path bad = write("src/demo/bad.hpp",
                             "#pragma once\n"
                             "inline std::vector<int> v() { return {}; }\n");
  cs::lint::HeaderCheckOptions opt;
  if (const char* cxx = std::getenv("CXX"); cxx != nullptr && *cxx != '\0')
    opt.compiler = cxx;

  const auto good_vs = cs::lint::check_headers_standalone({good}, opt);
  EXPECT_TRUE(good_vs.empty()) << good_vs.front().message;

  const auto bad_vs = cs::lint::check_headers_standalone({bad}, opt);
  ASSERT_EQ(bad_vs.size(), 1u);
  EXPECT_EQ(bad_vs.front().rule, "header-standalone");
}

// ---------------------------------------------------------------------------
// whole-file integration: one source with several violations reports each
// with the right line number
// ---------------------------------------------------------------------------

TEST(LintSource, ReportsLinesAndExcerpts) {
  const std::string src =
      "#include <mutex>\n"            // 1
      "void f(std::mutex& m) {\n"     // 2
      "  m.lock();\n"                 // 3
      "  int r = std::rand();\n"      // 4
      "  m.unlock();\n"               // 5
      "}\n";
  const auto vs = lint_source("src/parallel/x.cpp", src);
  ASSERT_EQ(vs.size(), 3u) << ::testing::PrintToString(rules_of(vs));
  EXPECT_EQ(vs[0].line, 3u);
  EXPECT_EQ(vs[0].rule, "raw-lock");
  EXPECT_EQ(vs[1].line, 4u);
  EXPECT_EQ(vs[1].rule, "std-rand");
  EXPECT_EQ(vs[2].line, 5u);
  EXPECT_EQ(vs[2].rule, "raw-lock");
  EXPECT_EQ(vs[0].excerpt, "m.lock();");
}

// ---------------------------------------------------------------------------
// stale-suppression: allow() annotations that suppress nothing, and baseline
// entries that no longer fire
// ---------------------------------------------------------------------------

TEST(StaleSuppression, SeededDeadAllowIsFlagged) {
  const std::string src =
      "#include <mutex>\n"                                        // 1
      "void f(std::mutex& m) {\n"                                 // 2
      "  std::lock_guard<std::mutex> lock(m);\n"                  // 3
      "  // cslint: allow(raw-lock) the bare lock() here is gone\n"  // 4
      "  int x = 0;\n"                                            // 5
      "  (void)x;\n"                                              // 6
      "}\n";
  cs::lint::SuppressionTracker supp;
  supp.scan("src/demo/x.cpp", src);
  const auto vs = lint_source("src/demo/x.cpp", src, &supp);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_of(vs));
  const auto stale = supp.stale();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "stale-suppression");
  EXPECT_EQ(stale[0].file, "src/demo/x.cpp");
  EXPECT_EQ(stale[0].line, 4u);
  EXPECT_NE(stale[0].message.find("raw-lock"), std::string::npos);
}

TEST(StaleSuppression, LiveAllowIsNotFlagged) {
  // Both annotation positions (same line, line above) count as used.
  const std::string src =
      "void f() {\n"
      "  mutex_.lock();  // cslint: allow(raw-lock) audited\n"
      "  // cslint: allow(raw-lock) audited\n"
      "  mutex_.unlock();\n"
      "}\n";
  cs::lint::SuppressionTracker supp;
  supp.scan("src/demo/x.cpp", src);
  const auto vs = lint_source("src/demo/x.cpp", src, &supp);
  EXPECT_TRUE(vs.empty());
  EXPECT_TRUE(supp.stale().empty())
      << ::testing::PrintToString(rules_of(supp.stale()));
}

TEST(StaleSuppression, PartiallyDeadListFlagsOnlyTheDeadRule) {
  const std::string src =
      "void f() {\n"
      "  mutex_.lock();  // cslint: allow(raw-lock, std-rand)\n"
      "}\n";
  cs::lint::SuppressionTracker supp;
  supp.scan("src/demo/x.cpp", src);
  const auto vs = lint_source("src/demo/x.cpp", src, &supp);
  EXPECT_TRUE(vs.empty());
  const auto stale = supp.stale();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].message.find("std-rand"), std::string::npos);
}

TEST(StaleSuppression, MentionsInStringsAndProseAreNotSites) {
  // A rule message quoting the syntax, and prose that mentions it
  // mid-comment, must not register as (stale) annotation sites.
  const std::string src =
      "const char* kMsg = \"annotate 'cslint: allow(raw-lock)' after "
      "auditing\";\n"
      "// The escape hatch is `cslint: allow(raw-lock)` on the line above.\n";
  cs::lint::SuppressionTracker supp;
  supp.scan("src/demo/x.cpp", src);
  EXPECT_TRUE(supp.stale().empty())
      << ::testing::PrintToString(rules_of(supp.stale()));
}

TEST(StaleSuppression, FlowAllowIsMarkedUsed) {
  const std::string src = R"(
namespace cs {
template <typename T> class Expected {};
struct Engine { Expected<int> solve(int spec); };
void driver(Engine& engine) {
  engine.solve(1);  // cslint: allow(must-use) fire-and-forget warmup
}
}  // namespace cs
)";
  cs::lint::SuppressionTracker supp;
  supp.scan("fix.cpp", src);
  cs::lint::FlowAnalyzer fa;
  fa.add_source("fix.cpp", src);
  const auto vs = fa.run({}, &supp);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_of(vs));
  EXPECT_TRUE(supp.stale().empty());
}

TEST(StaleSuppression, BaselineEntriesThatNoLongerFireAreStale) {
  const Violation live{"src/engine/server.cpp", 42, "must-use", "msg",
                       "engine.solve(1);"};
  const Violation dead{"src/engine/server.cpp", 99, "raw-lock", "msg",
                       "legacy.lock();"};
  cs::lint::Baseline b;
  b.add(live);
  b.add(dead);
  EXPECT_TRUE(b.contains(live));  // the live entry matches this run
  const auto stale = b.stale_keys();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], cs::lint::Baseline::key(dead));
}

// ---------------------------------------------------------------------------
// golden SARIF corpus: the checked-in fixtures under tools/cslint/testdata/
// must render to exactly the checked-in expected.sarif, byte for byte — any
// drift in rules, messages, ordering, or the SARIF serializer shows up as a
// diff against a reviewable artifact
// ---------------------------------------------------------------------------

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

TEST(SarifGolden, CorpusMatchesByteForByte) {
  const fs::path dir = CSLINT_TESTDATA_DIR;
  // (on-disk fixture, pinned display path) — the display path both keys the
  // SARIF artifact locations and selects path-scoped rules (scoped.cpp runs
  // under a src/core/ spelling on purpose).
  const struct {
    const char* file;
    const char* display;
  } kFixtures[] = {
      {"text_basic.cpp", "testdata/text_basic.cpp"},
      {"scoped.cpp", "testdata/src/core/scoped.cpp"},
      {"missing_guard.hpp", "testdata/missing_guard.hpp"},
      {"flow_rules.cpp", "testdata/flow_rules.cpp"},
      {"nonowning_escape.cpp", "testdata/nonowning_escape.cpp"},
      {"transitive_chain.cpp", "testdata/transitive_chain.cpp"},
  };
  std::vector<Violation> all;
  for (const auto& f : kFixtures) {
    const std::string content = slurp(dir / f.file);
    ASSERT_FALSE(content.empty()) << f.file;
    const auto text = lint_source(f.display, content);
    all.insert(all.end(), text.begin(), text.end());
    const auto flow = cs::lint::lint_flow(f.display, content);
    all.insert(all.end(), flow.begin(), flow.end());
  }
  EXPECT_GE(all.size(), 8u);  // every rule family is represented
  const std::string got = cs::lint::to_sarif(all);
  const std::string want = slurp(dir / "expected.sarif");
  if (got != want) {
    // Leave the render somewhere diffable before failing.
    const fs::path dump =
        fs::temp_directory_path() /
        ("cslint-sarif-got-" + std::to_string(::getpid()) + ".sarif");
    std::ofstream(dump, std::ios::binary) << got;
    FAIL() << "SARIF drift against " << (dir / "expected.sarif")
           << "\nactual render left at " << dump
           << "\nreview the diff and update expected.sarif if intended";
  }
}
