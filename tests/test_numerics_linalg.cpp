#include "numerics/linalg.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace cs::num {
namespace {

Matrix make2x2(double a, double b, double c, double d) {
  Matrix m(2, 2);
  m(0, 0) = a;
  m(0, 1) = b;
  m(1, 0) = c;
  m(1, 1) = d;
  return m;
}

TEST(Solve, TwoByTwo) {
  const auto x = solve(make2x2(2.0, 1.0, 1.0, 3.0), {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Zero on the diagonal: naive elimination would divide by zero.
  const auto x = solve(make2x2(0.0, 1.0, 1.0, 0.0), {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, ThreeByThree) {
  Matrix a(3, 3);
  const double data[3][3] = {{4, -2, 1}, {-2, 4, -2}, {1, -2, 4}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = data[r][c];
  const std::vector<double> rhs{11.0, -16.0, 17.0};
  const auto x = solve(a, rhs);
  // Verify by substitution.
  for (std::size_t r = 0; r < 3; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) acc += data[r][c] * x[c];
    EXPECT_NEAR(acc, rhs[r], 1e-10);
  }
}

TEST(Solve, SingularThrows) {
  EXPECT_THROW(solve(make2x2(1.0, 2.0, 2.0, 4.0), {1.0, 2.0}),
               std::runtime_error);
}

TEST(Solve, DimensionMismatchThrows) {
  EXPECT_THROW(solve(make2x2(1, 0, 0, 1), {1.0}), std::invalid_argument);
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Square consistent system: LSQ = solve.
  Matrix a = make2x2(1.0, 1.0, 1.0, -1.0);
  const auto x = least_squares(a, {3.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedLine) {
  // Fit y = 2x + 1 through noisy-free samples: exact recovery.
  Matrix a(5, 2);
  std::vector<double> b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 2.0 * x + 1.0;
  }
  const auto coef = least_squares(a, b);
  EXPECT_NEAR(coef[0], 1.0, 1e-10);
  EXPECT_NEAR(coef[1], 2.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidual) {
  // Inconsistent system: the LSQ solution's residual must not exceed that of
  // nearby perturbations.
  Matrix a(3, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  a(2, 0) = 1.0;
  const std::vector<double> b{1.0, 2.0, 6.0};
  const auto x = least_squares(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-10);  // mean
}

TEST(Polyfit, RecoversQuadratic) {
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 - 2.0 * i + 0.5 * i * i);
  }
  const auto c = polyfit(xs, ys, 2);
  EXPECT_NEAR(c[0], 3.0, 1e-9);
  EXPECT_NEAR(c[1], -2.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
}

TEST(Polyfit, ThrowsWhenUnderdetermined) {
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 2), std::invalid_argument);
}

TEST(Polyval, HornerMatchesDirect) {
  const std::vector<double> c{1.0, -3.0, 0.0, 2.0};  // 1 - 3x + 2x^3
  for (double x : {-2.0, 0.0, 0.5, 3.0}) {
    EXPECT_NEAR(polyval(c, x), 1.0 - 3.0 * x + 2.0 * x * x * x, 1e-12);
  }
}

TEST(Polyval, EmptyIsZero) { EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0); }

}  // namespace
}  // namespace cs::num
