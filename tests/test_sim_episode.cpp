// Monte-Carlo episode simulation vs the analytic objective (exp8's core).
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"
#include "numerics/stats.hpp"
#include "sim/episode.hpp"
#include "sim/reclaim.hpp"

namespace cs::sim {
namespace {

TEST(RunEpisode, DeterministicReplay) {
  const Schedule s({4.0, 3.0, 2.0});
  const double c = 1.0;
  {
    const auto out = run_episode(s, c, 100.0);  // survives everything
    EXPECT_DOUBLE_EQ(out.work, 6.0);
    EXPECT_DOUBLE_EQ(out.overhead, 3.0);
    EXPECT_DOUBLE_EQ(out.lost, 0.0);
    EXPECT_EQ(out.completed_periods, 3u);
  }
  {
    const auto out = run_episode(s, c, 5.5);  // dies in period 1
    EXPECT_DOUBLE_EQ(out.work, 3.0);
    EXPECT_EQ(out.completed_periods, 1u);
    EXPECT_DOUBLE_EQ(out.lost, 2.0);  // period 1 payload destroyed
  }
  {
    const auto out = run_episode(s, c, 0.5);  // dies during setup of period 0
    EXPECT_DOUBLE_EQ(out.work, 0.0);
    EXPECT_DOUBLE_EQ(out.lost, 0.0);  // nothing shipped yet
  }
  {
    const auto out = run_episode(s, c, 4.0);  // boundary: reclaimed by T_0
    EXPECT_DOUBLE_EQ(out.work, 0.0);
    EXPECT_EQ(out.completed_periods, 0u);
  }
}

TEST(ReclaimSampler, MatchesSurvivalLaw) {
  const auto p = cs::make_life_function("uniform:L=100");
  num::RandomStream rng(11);
  ReclaimSampler sampler(*p, rng);
  num::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(sampler.sample());
  EXPECT_NEAR(s.mean(), 50.0, 0.5);
  EXPECT_GE(s.min(), 0.0);
  EXPECT_LE(s.max(), 100.0);
}

TEST(MonteCarlo, DeterministicAcrossRuns) {
  const auto p = cs::make_life_function("uniform:L=100");
  const Schedule s({20.0, 15.0});
  MonteCarloOptions opt;
  opt.episodes = 10000;
  const auto a = monte_carlo_episodes(s, *p, 2.0, opt);
  const auto b = monte_carlo_episodes(s, *p, 2.0, opt);
  EXPECT_DOUBLE_EQ(a.work.mean(), b.work.mean());
}

TEST(MonteCarlo, SerialMatchesParallel) {
  const auto p = cs::make_life_function("geomlife:a=1.05");
  const Schedule s = Schedule::equal_periods(15.0, 10);
  MonteCarloOptions par_opt;
  par_opt.episodes = 20000;
  MonteCarloOptions ser_opt = par_opt;
  ser_opt.parallel = false;
  const auto par = monte_carlo_episodes(s, *p, 1.0, par_opt);
  const auto ser = monte_carlo_episodes(s, *p, 1.0, ser_opt);
  EXPECT_DOUBLE_EQ(par.work.mean(), ser.work.mean());
  EXPECT_EQ(par.work.count(), ser.work.count());
}

TEST(MonteCarlo, SeedChangesResults) {
  const auto p = cs::make_life_function("uniform:L=100");
  const Schedule s({20.0, 15.0});
  MonteCarloOptions a_opt;
  a_opt.episodes = 5000;
  MonteCarloOptions b_opt = a_opt;
  b_opt.seed = a_opt.seed + 1;
  EXPECT_NE(monte_carlo_episodes(s, *p, 2.0, a_opt).work.mean(),
            monte_carlo_episodes(s, *p, 2.0, b_opt).work.mean());
}

TEST(MonteCarlo, OverheadAndPeriodsAccounted) {
  const auto p = cs::make_life_function("uniform:L=1000");
  // Tiny risk over the schedule's span: almost every episode completes all
  // periods.
  const Schedule s({5.0, 5.0});
  MonteCarloOptions opt;
  opt.episodes = 20000;
  const auto r = monte_carlo_episodes(s, *p, 1.0, opt);
  EXPECT_NEAR(r.periods.mean(), 2.0, 0.05);
  EXPECT_NEAR(r.overhead.mean(), 2.0, 0.05);
}

// The law-of-large-numbers property across families: simulated mean work
// lands in the 99.9% CI of the analytic E(S;p).
struct McCase {
  const char* spec;
  double c;
};

class MonteCarloMatchesAnalytic : public ::testing::TestWithParam<McCase> {};

TEST_P(MonteCarloMatchesAnalytic, WithinConfidenceInterval) {
  const auto p = cs::make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = cs::GuidelineScheduler(*p, c).run();
  ASSERT_FALSE(g.schedule.empty());
  MonteCarloOptions opt;
  opt.episodes = 150000;
  const auto mc = monte_carlo_episodes(g.schedule, *p, c, opt);
  const auto ci = num::confidence_interval(mc.work, 3.89);  // ~99.99%
  EXPECT_TRUE(ci.contains(g.expected))
      << "analytic " << g.expected << " vs CI [" << ci.lo << ", " << ci.hi
      << "]";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonteCarloMatchesAnalytic,
    ::testing::Values(McCase{"uniform:L=480", 4.0},
                      McCase{"polyrisk:d=3,L=300", 2.0},
                      McCase{"geomlife:a=1.05", 1.0},
                      McCase{"geomrisk:L=40", 1.0},
                      McCase{"weibull:k=1.5,scale=60", 1.0}));

}  // namespace
}  // namespace cs::sim
