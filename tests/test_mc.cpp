// Unit tests for the csmc model checker (src/mc): memory-model semantics on
// hand-rolled litmuses, the production deque/FlightCell litmus verdicts,
// negative-litmus violation reporting with schedule replay, and mode
// agreement.  Skipped under ThreadSanitizer (the ucontext fiber scheduler
// cannot run under it; the tsan preset still builds this file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "litmus.hpp"
#include "mc/atomic.hpp"
#include "mc/checker.hpp"
#include "mc/options.hpp"

namespace mc = cs::mc;
using cs::mc::CheckResult;
using cs::mc::Checker;
using cs::mc::CheckerOptions;
using cs::mc::Mode;
using cs::mc::Verdict;

namespace {

#if CS_MC_TSAN
#define SKIP_UNDER_TSAN() GTEST_SKIP() << "csmc does not run under TSan"
#else
#define SKIP_UNDER_TSAN() (void)0
#endif

CheckResult check_litmus(const char* name,
                         Mode mode = Mode::kExhaustive) {
  const cs::mctool::Litmus* l = cs::mctool::find_litmus(name);
  EXPECT_NE(l, nullptr) << name;
  CheckerOptions opts = l->options;
  opts.mode = mode;
  return Checker(opts).run(l->build);
}

TEST(McModel, MessagePassingReleaseAcquireIsRaceFree) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("mp-release-acquire");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
  EXPECT_GE(res.executions, 2u);  // both flag outcomes explored
}

TEST(McModel, MessagePassingRelaxedIsARace) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("mp-relaxed");
  EXPECT_EQ(res.verdict, Verdict::kViolation);
  EXPECT_NE(res.violation.find("data race"), std::string::npos)
      << res.violation;
  EXPECT_FALSE(res.trace.empty());
}

TEST(McModel, StoreBufferingSeqCstForbidsBothZero) {
  SKIP_UNDER_TSAN();
  EXPECT_EQ(check_litmus("sb-seq-cst").verdict, Verdict::kOk);
}

TEST(McModel, StoreBufferingReleaseAcquireAllowsBothZero) {
  SKIP_UNDER_TSAN();
  EXPECT_EQ(check_litmus("sb-release-acquire").verdict, Verdict::kViolation);
}

TEST(McModel, RelaxedCountersAreExactAndCoherent) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("counters-relaxed");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
}

// A relaxed load may legally read a stale value: the checker must actually
// explore that reads-from choice (this is what plain interleaving testing
// cannot do).
TEST(McModel, RelaxedLoadObservesStaleValue) {
  SKIP_UNDER_TSAN();
  Checker checker;
  const CheckResult res = checker.run([](mc::Program& p) {
    auto x = std::make_shared<mc::atomic<std::uint64_t>>(0);
    p.thread("writer", [=] { x->store(1, std::memory_order_relaxed); });
    p.thread("reader", [=] { mc::note(x->load(std::memory_order_relaxed)); });
    p.finally([] {
      // Reader scheduled after the write can still read 0 on some branch.
      mc::check(mc::notes_of("reader").at(0) == 1, "saw the new value");
    });
  });
  EXPECT_EQ(res.verdict, Verdict::kViolation);  // the stale branch exists
}

TEST(McModel, SeqCstLoadNeverReadsStale) {
  SKIP_UNDER_TSAN();
  Checker checker;
  const CheckResult res = checker.run([](mc::Program& p) {
    auto x = std::make_shared<mc::atomic<std::uint64_t>>(0);
    auto done = std::make_shared<mc::atomic<std::uint64_t>>(0);
    p.thread("writer", [=] {
      x->store(1, std::memory_order_seq_cst);
      done->store(1, std::memory_order_seq_cst);
    });
    p.thread("reader", [=] {
      if (done->load(std::memory_order_seq_cst) == 1)
        mc::check(x->load(std::memory_order_seq_cst) == 1,
                  "seq_cst read went stale");
    });
  });
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
}

TEST(McModel, ReleaseFencePublishesPriorStores) {
  SKIP_UNDER_TSAN();
  Checker checker;
  const CheckResult res = checker.run([](mc::Program& p) {
    auto data = std::make_shared<mc::plain<std::uint64_t>>(0);
    auto flag = std::make_shared<mc::atomic<std::uint64_t>>(0);
    p.thread("producer", [=] {
      data->write(7);
      mc::fence(std::memory_order_release);
      flag->store(1, std::memory_order_relaxed);
    });
    p.thread("consumer", [=] {
      if (flag->load(std::memory_order_relaxed) == 1) {
        mc::fence(std::memory_order_acquire);
        mc::check(data->read() == 7, "fence pair failed to synchronize");
      }
    });
  });
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
}

TEST(McDeque, StealCasLitmusHoldsOnEverySchedule) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("deque-steal-cas");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
  EXPECT_GT(res.states, 100u);  // really explored, not vacuous
}

TEST(McDeque, OwnerVsThievesExhaustive) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("deque-owner-vs-thieves");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
  EXPECT_TRUE(res.note.empty()) << res.note;  // no bound tripped: exhaustive
  EXPECT_GT(res.executions, 100u);
}

TEST(McDeque, GrowLitmusHolds) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("deque-grow");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
}

TEST(McDeque, WeakenedOrderingIsCaughtAndReplays) {
  SKIP_UNDER_TSAN();
  const cs::mctool::Litmus* l = cs::mctool::find_litmus("deque-weak-owner");
  ASSERT_NE(l, nullptr);
  Checker checker(l->options);
  const CheckResult res = checker.run(l->build);
  ASSERT_EQ(res.verdict, Verdict::kViolation);
  EXPECT_NE(res.violation.find("conservation"), std::string::npos)
      << res.violation;
  ASSERT_FALSE(res.schedule.empty());
  ASSERT_FALSE(res.trace.empty());
  // The reported schedule must deterministically reproduce the violation.
  const CheckResult again = checker.replay(l->build, res.schedule);
  EXPECT_EQ(again.verdict, Verdict::kViolation);
  EXPECT_EQ(again.violation, res.violation);
}

TEST(McFlight, PublishBeforeVacateHolds) {
  SKIP_UNDER_TSAN();
  const CheckResult res = check_litmus("flight-publish");
  EXPECT_EQ(res.verdict, Verdict::kOk) << res.violation;
}

TEST(McFlight, RelaxedCellIsCaught) {
  SKIP_UNDER_TSAN();
  EXPECT_EQ(check_litmus("flight-weak").verdict, Verdict::kViolation);
}

// The three exploration modes must agree on verdicts (sleep sets and the
// preemption bound may prune, but never miss these shallow violations).
TEST(McModes, AgreeOnVerdicts) {
  SKIP_UNDER_TSAN();
  for (const char* name : {"mp-release-acquire", "mp-relaxed",
                           "deque-steal-cas", "deque-weak-owner"}) {
    const Verdict expected = cs::mctool::find_litmus(name)->expect;
    for (const Mode mode :
         {Mode::kExhaustive, Mode::kSleepSets, Mode::kBoundedPreempt}) {
      const CheckResult res = check_litmus(name, mode);
      EXPECT_EQ(res.verdict, expected)
          << name << " under " << to_string(mode) << ": " << res.note;
    }
  }
}

TEST(McBounds, MaxExecutionsTrips) {
  SKIP_UNDER_TSAN();
  const cs::mctool::Litmus* l = cs::mctool::find_litmus("deque-steal-cas");
  ASSERT_NE(l, nullptr);
  CheckerOptions opts = l->options;
  opts.max_executions = 3;
  const CheckResult res = Checker(opts).run(l->build);
  EXPECT_EQ(res.verdict, Verdict::kBoundExceeded);
  EXPECT_EQ(res.note, "max_executions");
}

}  // namespace
