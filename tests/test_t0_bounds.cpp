// Theorems 3.2 / 3.3, Lemma 3.1, Corollary 5.5 — the t0 bracket.
#include <cmath>

#include <gtest/gtest.h>

#include "core/dp_reference.hpp"
#include "core/t0_bounds.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Thm32Lower, UniformRiskIsSqrtCL) {
  // Section 4.1 eq. (4.4): lower bound sqrt(cL) exactly.
  for (double L : {100.0, 480.0, 2000.0}) {
    for (double c : {1.0, 4.0, 9.0}) {
      const UniformRisk p(L);
      EXPECT_NEAR(thm32_lower_bound(p, c), std::sqrt(c * L),
                  1e-3 * std::sqrt(c * L))
          << "L=" << L << " c=" << c;
    }
  }
}

TEST(Thm32Lower, GeometricLifespanClosedForm) {
  // Section 4.2: lower bound sqrt(c^2/4 + c/ln a) + c/2.
  for (double a : {1.01, 1.05, 1.2}) {
    const GeometricLifespan p(a);
    const double c = 1.0;
    const double expect = std::sqrt(0.25 + 1.0 / p.ln_a()) + 0.5;
    EXPECT_NEAR(thm32_lower_bound(p, c), expect, 1e-4 * expect) << "a=" << a;
  }
}

TEST(Thm32Lower, RejectsNonpositiveC) {
  const UniformRisk p(100.0);
  EXPECT_THROW((void)thm32_lower_bound(p, 0.0), std::invalid_argument);
}

TEST(Thm33Upper, UniformRiskNearTwiceSqrtCL) {
  // Section 4.1 eq. (4.4): upper bound 2 sqrt(cL) + 1; the exact crossing of
  // (3.13)/(3.14) is slightly tighter: t^2 + 2ct = 4cL.
  const double L = 480.0, c = 4.0;
  const UniformRisk p(L);
  const auto ub = thm33_upper_bound(p, c);
  ASSERT_TRUE(ub.has_value());
  const double exact = -c + std::sqrt(c * c + 4.0 * c * L);
  EXPECT_NEAR(*ub, exact, 1e-3 * exact);
  EXPECT_LE(*ub, 2.0 * std::sqrt(c * L) + 1.0 + 1e-6);
}

TEST(Thm33Upper, GeometricLifespanConstantRhs) {
  // For convex a^{-t}, -p/p' = 1/ln a everywhere, so the bound is exactly
  // 2 sqrt(c^2/4 + c/ln a) + c.
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto ub = thm33_upper_bound(p, c);
  ASSERT_TRUE(ub.has_value());
  const double expect = 2.0 * std::sqrt(0.25 + 1.0 / p.ln_a()) + 1.0;
  EXPECT_NEAR(*ub, expect, 1e-4 * expect);
}

TEST(Thm33Upper, GeneralShapeGivesNullopt) {
  const Weibull w(1.8, 50.0);
  EXPECT_FALSE(thm33_upper_bound(w, 1.0).has_value());
}

TEST(Lemma31Upper, GeometricLifespanMatchesPaper) {
  // Section 4.2: the Lemma 3.1 route gives t0 <= c + 1/ln a; our numeric
  // bound is the sharpest instantiation, hence <= the paper's and >= t*.
  for (double a : {1.01, 1.05}) {
    const GeometricLifespan p(a);
    const double c = 1.0;
    const double ub = lemma31_upper_bound(p, c);
    EXPECT_LE(ub, c + 1.0 / p.ln_a() + 1e-6) << "a=" << a;
    EXPECT_GT(ub, c) << "a=" << a;
  }
}

TEST(Cor55Lower, OnlyForConcaveBounded) {
  EXPECT_TRUE(cor55_lower_bound(PolynomialRisk(3, 100.0), 2.0).has_value());
  EXPECT_TRUE(cor55_lower_bound(UniformRisk(100.0), 2.0).has_value());
  EXPECT_FALSE(cor55_lower_bound(GeometricLifespan(1.05), 2.0).has_value());
  EXPECT_FALSE(cor55_lower_bound(Weibull(2.0, 50.0), 2.0).has_value());
}

TEST(Cor55Lower, ClosedForm) {
  const auto lb = cor55_lower_bound(UniformRisk(200.0), 4.0);
  ASSERT_TRUE(lb.has_value());
  EXPECT_DOUBLE_EQ(*lb, std::sqrt(0.5 * 4.0 * 200.0) + 3.0);
}

TEST(Bracket, RequiresPositiveC) {
  const UniformRisk p(100.0);
  EXPECT_THROW((void)guideline_t0_bracket(p, 0.0), std::invalid_argument);
}

TEST(Bracket, PolyFamilyScalingLaw) {
  // Section 4.1: t0 ~ (c/d)^{1/(d+1)} L^{d/(d+1)} with bracket ratio <~ 2.
  const double L = 1000.0, c = 2.0;
  for (int d : {1, 2, 3, 4, 6}) {
    const PolynomialRisk p(d, L);
    const auto b = guideline_t0_bracket(p, c);
    const double scale =
        std::pow(c / d, 1.0 / (d + 1)) * std::pow(L, double(d) / (d + 1));
    EXPECT_GT(b.lower, 0.8 * scale) << "d=" << d;
    EXPECT_LT(b.upper, 2.0 * scale + c + 1.0) << "d=" << d;
    EXPECT_LE(b.ratio(), 2.2) << "d=" << d;
  }
}

// Property: the bracket brackets the *true* optimal t0 (from the DP
// reference) across families — the headline guarantee of Section 3.3.
struct BracketCase {
  const char* spec;
  double c;
};

class BracketContainsOptimal : public ::testing::TestWithParam<BracketCase> {};

TEST_P(BracketContainsOptimal, DpOptimalT0InsideBracket) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto b = guideline_t0_bracket(*p, c);
  ASSERT_GT(b.upper, 0.0);
  ASSERT_GE(b.upper, b.lower);
  DpOptions opt;
  opt.grid_points = 4096;
  const auto dp = dp_reference(*p, c, opt);
  ASSERT_FALSE(dp.schedule.empty());
  const double t0_star = dp.schedule[0];
  // Allow a small tolerance for DP discretization.
  const double tol = 0.05 * (b.upper - b.lower) + 0.05 * t0_star;
  EXPECT_GE(t0_star, b.lower - tol) << "bracket=[" << b.lower << "," << b.upper << "]";
  EXPECT_LE(t0_star, b.upper + tol) << "bracket=[" << b.lower << "," << b.upper << "]";
}

TEST_P(BracketContainsOptimal, BracketWithinFactorTwoPlus) {
  const auto p = make_life_function(GetParam().spec);
  const auto b = guideline_t0_bracket(*p, GetParam().c);
  // The paper: "bracket t0 for many smooth life functions within a factor
  // of 2" (plus low-order terms).
  EXPECT_LE(b.ratio(), 2.5) << "[" << b.lower << ", " << b.upper << "]";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BracketContainsOptimal,
    ::testing::Values(BracketCase{"uniform:L=480", 4.0},
                      BracketCase{"uniform:L=100", 1.0},
                      BracketCase{"polyrisk:d=2,L=500", 2.0},
                      BracketCase{"polyrisk:d=4,L=500", 2.0},
                      BracketCase{"geomlife:a=1.02", 1.0},
                      BracketCase{"geomlife:a=1.1", 2.0},
                      BracketCase{"geomrisk:L=30", 1.0},
                      BracketCase{"geomrisk:L=60", 2.0}));

}  // namespace
}  // namespace cs
