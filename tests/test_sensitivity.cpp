// Misestimation sensitivity (exp12's engine).
#include <gtest/gtest.h>

#include "core/sensitivity.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(SensitivityToOverhead, ZeroErrorIsUnity) {
  const UniformRisk p(480.0);
  const auto pts = sensitivity_to_overhead(p, 4.0, {0.0});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].efficiency, 1.0, 1e-9);
}

TEST(SensitivityToOverhead, EfficiencyAtMostOne) {
  const UniformRisk p(480.0);
  const auto pts =
      sensitivity_to_overhead(p, 4.0, {-0.5, -0.2, 0.0, 0.2, 0.5, 1.0});
  for (const auto& pt : pts) {
    EXPECT_LE(pt.efficiency, 1.0 + 1e-9) << pt.relative_error;
    EXPECT_GE(pt.efficiency, 0.0) << pt.relative_error;
  }
}

TEST(SensitivityToOverhead, GracefulDegradation) {
  // A 20% error in c must cost little; the guidelines are flat near the
  // optimum (the factor-2 bracket only costs a few percent, exp5).
  const UniformRisk p(480.0);
  const auto pts = sensitivity_to_overhead(p, 4.0, {-0.2, 0.2});
  for (const auto& pt : pts)
    EXPECT_GT(pt.efficiency, 0.98) << pt.relative_error;
}

TEST(SensitivityToOverhead, ExtremeUnderestimateHurtsMore) {
  const UniformRisk p(480.0);
  const auto pts = sensitivity_to_overhead(p, 4.0, {-0.9, 0.9});
  // Underestimating c (too-small chunks: overhead dominates) is worse than
  // overestimating by the same factor (slightly-too-large chunks).
  EXPECT_LT(pts[0].efficiency, pts[1].efficiency);
}

TEST(SensitivityToOverhead, ValidatesArguments) {
  const UniformRisk p(100.0);
  EXPECT_THROW(sensitivity_to_overhead(p, 0.0, {0.0}), std::invalid_argument);
}

TEST(SensitivityToOverhead, NonpositiveAssumedSkipped) {
  const UniformRisk p(100.0);
  const auto pts = sensitivity_to_overhead(p, 2.0, {-1.5});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].efficiency, 0.0);  // marked unusable, not crashed
}

TEST(SensitivityToTimescale, ZeroErrorIsUnity) {
  const GeometricLifespan p(1.02);
  const auto pts = sensitivity_to_timescale(p, 1.0, {0.0});
  EXPECT_NEAR(pts[0].efficiency, 1.0, 1e-9);
}

TEST(SensitivityToTimescale, MonotoneDegradationAwayFromTruth) {
  const UniformRisk p(480.0);
  const auto pts =
      sensitivity_to_timescale(p, 4.0, {-0.5, -0.25, 0.0, 0.25, 0.5});
  const double mid = pts[2].efficiency;
  for (const auto& pt : pts) EXPECT_LE(pt.efficiency, mid + 1e-9);
  // And large errors cost real work.
  EXPECT_LT(pts[0].efficiency, 1.0);
}

TEST(SensitivityToTimescale, MemorylessRobustToScale) {
  // Scaling a^{-t} in time keeps it memoryless; scheduling with a ±25%
  // wrong half-life costs only a few percent.
  const GeometricLifespan p(1.02);
  const auto pts = sensitivity_to_timescale(p, 1.0, {-0.25, 0.25});
  for (const auto& pt : pts)
    EXPECT_GT(pt.efficiency, 0.95) << pt.relative_error;
}

}  // namespace
}  // namespace cs
