// The objective E(S; p) of eq. (2.1) and the Prop 2.1 canonicalization.
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(ExpectedWork, HandComputedUniform) {
  // p = 1 - t/10, c = 1, S = {4, 3}.
  // E = (4-1)p(4) + (3-1)p(7) = 3*0.6 + 2*0.3 = 2.4.
  const UniformRisk p(10.0);
  EXPECT_NEAR(expected_work(Schedule({4.0, 3.0}), p, 1.0), 2.4, 1e-12);
}

TEST(ExpectedWork, EmptyScheduleIsZero) {
  const UniformRisk p(10.0);
  EXPECT_DOUBLE_EQ(expected_work(Schedule(), p, 1.0), 0.0);
}

TEST(ExpectedWork, UnproductivePeriodsContributeNothing) {
  const UniformRisk p(10.0);
  // Period 0 shorter than c: contributes 0 but still consumes time.
  const double e = expected_work(Schedule({0.5, 4.0}), p, 1.0);
  EXPECT_NEAR(e, 3.0 * p.survival(4.5), 1e-12);
}

TEST(ExpectedWork, PeriodsBeyondLifespanContributeNothing) {
  const UniformRisk p(10.0);
  EXPECT_DOUBLE_EQ(expected_work(Schedule({12.0}), p, 1.0), 0.0);
  EXPECT_NEAR(expected_work(Schedule({5.0, 20.0}), p, 1.0),
              4.0 * 0.5, 1e-12);
}

TEST(ExpectedWork, NegativeCThrows) {
  const UniformRisk p(10.0);
  EXPECT_THROW((void)expected_work(Schedule({1.0}), p, -1.0), std::invalid_argument);
}

TEST(ExpectedWork, MatchesTermSum) {
  const GeometricLifespan p(1.05);
  const Schedule s({10.0, 8.0, 6.0});
  const auto terms = expected_work_terms(s, p, 2.0);
  ASSERT_EQ(terms.size(), 3u);
  double total = 0.0;
  for (double t : terms) total += t;
  EXPECT_NEAR(expected_work(s, p, 2.0), total, 1e-12);
}

TEST(ExpectedWork, GeometricSeriesClosedForm) {
  // Equal periods t against a^{-t}: E = (t-c) q/(1-q) (1 - q^m)/... finite:
  // sum_{k=1..m} (t-c) q^k.
  const GeometricLifespan p(1.1);
  const double t = 5.0, c = 1.0;
  const double q = p.survival(t);
  const std::size_t m = 20;
  double expect = 0.0;
  for (std::size_t k = 1; k <= m; ++k) expect += (t - c) * std::pow(q, k);
  EXPECT_NEAR(expected_work(Schedule::equal_periods(t, m), p, c), expect,
              1e-10);
}

TEST(WorkGivenReclaim, CountsOnlyCompletedPeriods) {
  const Schedule s({4.0, 3.0, 2.0});
  const double c = 1.0;
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, 3.0), 0.0);   // during period 0
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, 4.0), 0.0);   // exactly at T_0
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, 4.5), 3.0);   // period 0 done
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, 7.5), 5.0);
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, c, 100.0), 6.0);
}

TEST(WorkGivenReclaim, ReclaimAtEndBoundaryKillsPeriod) {
  // "If B is reclaimed by time T_k the episode ends" — T_k itself counts as
  // reclaimed-by.
  const Schedule s({5.0});
  EXPECT_DOUBLE_EQ(work_given_reclaim(s, 1.0, 5.0), 0.0);
}

TEST(ExpectedWork, IsExpectationOfWorkGivenReclaim) {
  // Check E(S;p) = ∫ work(R) dF(R) by Riemann sum against uniform risk.
  const UniformRisk p(50.0);
  const Schedule s({10.0, 8.0, 6.0, 4.0});
  const double c = 2.0;
  double riemann = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double r = 50.0 * (i + 0.5) / n;  // density 1/L
    riemann += work_given_reclaim(s, c, r) / n;
  }
  EXPECT_NEAR(expected_work(s, p, c), riemann, 1e-3);
}

// ----------------------------------------------------------- canonicalize

TEST(Canonicalize, ProductiveScheduleUnchanged) {
  const Schedule s({5.0, 4.0, 3.0});
  EXPECT_EQ(canonicalize(s, 1.0), s);
}

TEST(Canonicalize, MergesUnproductiveForward) {
  const Schedule s({0.5, 0.4, 5.0});
  const Schedule out = canonicalize(s, 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 5.9);
}

TEST(Canonicalize, DropsTrailingUnproductive) {
  const Schedule s({5.0, 0.5});
  const Schedule out = canonicalize(s, 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
}

TEST(Canonicalize, AllUnproductiveMayVanish) {
  const Schedule s({0.2, 0.3});
  EXPECT_TRUE(canonicalize(s, 1.0).empty());
}

TEST(Canonicalize, MergedRunBecomesProductive) {
  // The first two periods merge into a productive 1.2; the trailing 0.6
  // cannot reach productivity and is dropped (it contributed nothing).
  const Schedule s({0.6, 0.6, 0.6});
  const Schedule out = canonicalize(s, 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 1.2, 1e-12);
}

TEST(IsProductive, Definition) {
  EXPECT_TRUE(is_productive(Schedule({2.0, 3.0}), 1.0));
  EXPECT_FALSE(is_productive(Schedule({2.0, 1.0}), 1.0));
  EXPECT_TRUE(is_productive(Schedule(), 1.0));
}

// Property: canonicalization never decreases E (Prop 2.1) and always yields
// a productive schedule — across families and overheads.
struct CanonCase {
  const char* spec;
  double c;
};

class CanonicalizeProperty : public ::testing::TestWithParam<CanonCase> {};

TEST_P(CanonicalizeProperty, NeverDecreasesExpectedWork) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const std::vector<Schedule> cases = {
      Schedule({0.5 * c, 3.0 * c, 0.2 * c, 7.0 * c, 0.9 * c}),
      Schedule({10.0, 0.1, 0.1, 0.1, 8.0}),
      Schedule::equal_periods(0.8 * c, 10),
      Schedule({c * 1.5, c * 0.5, c * 1.5, c * 0.5}),
  };
  for (const auto& s : cases) {
    const Schedule out = canonicalize(s, c);
    EXPECT_GE(expected_work(out, *p, c) + 1e-12, expected_work(s, *p, c))
        << s.to_string();
    EXPECT_TRUE(is_productive(out, c)) << out.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CanonicalizeProperty,
    ::testing::Values(CanonCase{"uniform:L=100", 2.0},
                      CanonCase{"polyrisk:d=3,L=60", 1.0},
                      CanonCase{"geomlife:a=1.05", 0.5},
                      CanonCase{"geomrisk:L=25", 1.5},
                      CanonCase{"weibull:k=1.3,scale=40", 2.5}));

}  // namespace
}  // namespace cs
