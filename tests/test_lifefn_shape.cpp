// Numeric shape detection (needed by Theorem 3.3 for fitted curves).
#include <cmath>

#include <gtest/gtest.h>

#include "lifefn/families.hpp"
#include "lifefn/shape.hpp"

namespace cs {
namespace {

TEST(DetectShape, LinearCurve) {
  EXPECT_EQ(detect_shape([](double t) { return 1.0 - t / 10.0; }, 10.0),
            Shape::Linear);
}

TEST(DetectShape, ConvexExponential) {
  EXPECT_EQ(detect_shape([](double t) { return std::exp(-t); }, 10.0, 256,
                         1e-9),
            Shape::Convex);
}

TEST(DetectShape, ConcaveQuadratic) {
  EXPECT_EQ(
      detect_shape([](double t) { return 1.0 - t * t / 100.0; }, 10.0),
      Shape::Concave);
}

TEST(DetectShape, GeneralSigmoid) {
  // Falling sigmoid has an inflection: neither convex nor concave.
  EXPECT_EQ(detect_shape(
                [](double t) { return 1.0 / (1.0 + std::exp(t - 5.0)); },
                10.0),
            Shape::General);
}

TEST(DetectShape, RejectsBadArguments) {
  EXPECT_THROW(detect_shape([](double) { return 1.0; }, 0.0),
               std::invalid_argument);
  EXPECT_THROW(detect_shape([](double) { return 1.0; }, 1.0, 2),
               std::invalid_argument);
}

TEST(DetectShape, AgreesWithDeclaredShapes) {
  const UniformRisk uni(100.0);
  EXPECT_EQ(detect_shape(uni), Shape::Linear);
  const PolynomialRisk poly(3, 100.0);
  EXPECT_EQ(detect_shape(poly), Shape::Concave);
  const GeometricLifespan geo(1.05);
  EXPECT_EQ(detect_shape(geo), Shape::Convex);
  const GeometricRisk risk(20.0);
  EXPECT_EQ(detect_shape(risk), Shape::Concave);
}

TEST(DetectShape, WeibullAboveOneIsGeneral) {
  const Weibull w(2.5, 30.0);
  EXPECT_EQ(detect_shape(w, 512, 1e-8), Shape::General);
}

TEST(ShapeToString, AllValuesNamed) {
  EXPECT_STREQ(to_string(Shape::Concave), "concave");
  EXPECT_STREQ(to_string(Shape::Convex), "convex");
  EXPECT_STREQ(to_string(Shape::Linear), "linear");
  EXPECT_STREQ(to_string(Shape::General), "general");
}

}  // namespace
}  // namespace cs
