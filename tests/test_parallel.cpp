#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cs::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
  }  // join here
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SharedSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&counter] { ++counter; });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a crash
  f.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, AcceptsMoveOnlyCallables) {
  // submit() builds the packaged_task directly from the callable, so a
  // move-only closure (impossible with a std::function detour) must work.
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(41);
  auto f = pool.submit(
      [p = std::move(payload)]() mutable { return ++*p; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f.get(), "done");
}

TEST(ThreadPool, WorkerIndexIdentifiesPoolThreads) {
  ThreadPool pool(4);
  // Every pool thread reports a distinct index in [0, size); a barrier keeps
  // all four tasks resident so no thread can answer for two of them.
  std::atomic<int> arrived{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
      return pool.worker_index();
    }));
  }
  std::vector<int> seen;
  for (auto& f : futures) seen.push_back(f.get());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, WorkerIndexIsMinusOneOffPool) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_index(), -1);  // caller thread is not a pool thread
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
}

TEST(ThreadPool, WorkerIndexIsPerPool) {
  // A thread of pool B is a foreign thread from pool A's point of view, but
  // current_worker_index() still reports its index within its own pool.
  ThreadPool a(2), b(2);
  auto f = b.submit([&] {
    return std::pair<int, int>(a.worker_index(),
                               ThreadPool::current_worker_index());
  });
  const auto [on_a, own] = f.get();
  EXPECT_EQ(on_a, -1);
  EXPECT_GE(own, 0);
  EXPECT_LT(own, 2);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 1, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t b, std::size_t) {
                     if (b == 0) throw std::logic_error("bad");
                   }),
      std::logic_error);
}

TEST(ParallelReduce, SumsRange) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const double total = parallel_reduce<double>(
      pool, n, [] { return 0.0; },
      [](double& acc, std::size_t i) { acc += static_cast<double>(i); },
      [](double& into, const double& from) { into += from; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  ThreadPool pool(2);
  const double total = parallel_reduce<double>(
      pool, 0, [] { return 42.0; },
      [](double&, std::size_t) { FAIL() << "fold must not run"; },
      [](double& into, const double& from) { into += from; });
  EXPECT_DOUBLE_EQ(total, 42.0);  // the bare accumulator, no folds
}

TEST(ParallelReduce, DeterministicCombineOrder) {
  // Combining in chunk order makes the float sum reproducible run-to-run.
  ThreadPool pool(8);
  auto run = [&] {
    return parallel_reduce<double>(
        pool, 100000, [] { return 0.0; },
        [](double& acc, std::size_t i) {
          acc += 1.0 / (1.0 + static_cast<double>(i));
        },
        [](double& into, const double& from) { into += from; });
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace cs::par
