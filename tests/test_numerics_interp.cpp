#include "numerics/interp.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cs::num {
namespace {

TEST(LinearInterp, ExactAtKnots) {
  LinearInterp li({0.0, 1.0, 3.0}, {1.0, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(li(0.0), 1.0);
  EXPECT_DOUBLE_EQ(li(1.0), 0.5);
  EXPECT_DOUBLE_EQ(li(3.0), 0.0);
}

TEST(LinearInterp, MidpointsLinear) {
  LinearInterp li({0.0, 2.0}, {0.0, 4.0});
  EXPECT_DOUBLE_EQ(li(0.5), 1.0);
  EXPECT_DOUBLE_EQ(li(1.5), 3.0);
}

TEST(LinearInterp, ClampsOutsideRange) {
  LinearInterp li({0.0, 1.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(li(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(li(9.0), 3.0);
}

TEST(LinearInterp, DerivativeIsSegmentSlope) {
  LinearInterp li({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(li.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(li.derivative(2.0), 0.0);
}

TEST(LinearInterp, RejectsBadKnots) {
  EXPECT_THROW(LinearInterp({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(LinearInterp({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(LinearInterp({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(PchipInterp, ExactAtKnots) {
  PchipInterp pi({0.0, 1.0, 2.0, 4.0}, {1.0, 0.8, 0.3, 0.0});
  EXPECT_DOUBLE_EQ(pi(0.0), 1.0);
  EXPECT_DOUBLE_EQ(pi(1.0), 0.8);
  EXPECT_DOUBLE_EQ(pi(2.0), 0.3);
  EXPECT_DOUBLE_EQ(pi(4.0), 0.0);
}

TEST(PchipInterp, PreservesMonotonicity) {
  // Decreasing data: the interpolant must never increase (the survival-curve
  // requirement).
  PchipInterp pi({0.0, 1.0, 1.5, 4.0, 10.0}, {1.0, 0.9, 0.3, 0.29, 0.0});
  double prev = pi(0.0);
  for (int i = 1; i <= 1000; ++i) {
    const double t = 10.0 * i / 1000.0;
    const double v = pi(t);
    EXPECT_LE(v, prev + 1e-12) << "at t=" << t;
    prev = v;
  }
}

TEST(PchipInterp, NoOvershootOnFlatData) {
  // Classic cubic-spline overshoot scenario: a step-like profile.
  PchipInterp pi({0.0, 1.0, 2.0, 3.0}, {1.0, 1.0, 0.0, 0.0});
  for (int i = 0; i <= 300; ++i) {
    const double t = 3.0 * i / 300.0;
    const double v = pi(t);
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(PchipInterp, DerivativeMatchesFiniteDifference) {
  PchipInterp pi({0.0, 1.0, 2.0, 4.0}, {1.0, 0.7, 0.4, 0.0});
  const double h = 1e-7;
  for (double t : {0.3, 1.5, 3.2}) {
    const double fd = (pi(t + h) - pi(t - h)) / (2.0 * h);
    EXPECT_NEAR(pi.derivative(t), fd, 1e-5) << "t=" << t;
  }
}

TEST(PchipInterp, DerivativeNonpositiveOnDecreasingData) {
  PchipInterp pi({0.0, 2.0, 3.0, 7.0, 9.0}, {1.0, 0.6, 0.55, 0.1, 0.0});
  for (int i = 0; i <= 500; ++i) {
    const double t = 9.0 * i / 500.0;
    EXPECT_LE(pi.derivative(t), 1e-12) << "t=" << t;
  }
}

TEST(PchipInterp, TwoPointCaseIsLinear) {
  PchipInterp pi({0.0, 4.0}, {1.0, 0.0});
  EXPECT_NEAR(pi(1.0), 0.75, 1e-12);
  EXPECT_NEAR(pi(2.0), 0.5, 1e-12);
  EXPECT_NEAR(pi.derivative(2.0), -0.25, 1e-12);
}

TEST(PchipInterp, ClampsOutsideRange) {
  PchipInterp pi({0.0, 1.0, 2.0}, {1.0, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(pi(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(pi(5.0), 0.0);
  EXPECT_DOUBLE_EQ(pi.derivative(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(pi.derivative(5.0), 0.0);
}

TEST(PchipInterp, ReproducesSmoothFunction) {
  // Dense knots on exp(-t/3): interpolation error should be tiny.
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(0.25 * i);
    y.push_back(std::exp(-x.back() / 3.0));
  }
  PchipInterp pi(x, y);
  for (double t : {0.1, 1.33, 4.87, 9.99}) {
    EXPECT_NEAR(pi(t), std::exp(-t / 3.0), 2e-4) << "t=" << t;
  }
}

}  // namespace
}  // namespace cs::num
