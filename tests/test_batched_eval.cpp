// Batched evaluation: eval_many/deriv_many must be bit-for-bit identical to
// the scalar virtuals for every family (the closed-form overrides promise
// the *same arithmetic*, just one dispatch per batch), FunctionRef must
// route batches through a callable's own batch channel, and tabulated life
// functions must honor their measured error bound on fresh off-knot samples.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "lifefn/factory.hpp"
#include "lifefn/life_function.hpp"
#include "lifefn/tabulated.hpp"
#include "numerics/function_ref.hpp"
#include "numerics/rng.hpp"

namespace {

using cs::LifeFunction;
using cs::make_life_function;

const std::vector<std::string>& all_specs() {
  static const std::vector<std::string> kSpecs = {
      "uniform:L=1000",
      "polyrisk:d=3,L=1000",
      "geomlife:half=100",
      "geomrisk:L=40",
      "weibull:k=1.5,scale=500",
      "pareto:d=2",
      "lognormal:mu=3,sigma=1",
      "pwl:0:1;50:0.4;100:0",
      "empirical:0:1;10:0.7;40:0",
  };
  return kSpecs;
}

/// Random abscissae spanning the interesting range of `p`, including the
/// edges (t <= 0 must yield 1, t past the horizon must yield 0).
std::vector<double> sample_points(const LifeFunction& p,
                                  cs::num::RandomStream& rng,
                                  std::size_t n) {
  const double hi = p.lifespan().value_or(p.horizon()) * 1.25;
  std::vector<double> xs;
  xs.reserve(n + 3);
  xs.push_back(-1.0);
  xs.push_back(0.0);
  xs.push_back(hi);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(0.0, hi));
  return xs;
}

}  // namespace

TEST(BatchedEval, EvalManyBitIdenticalToScalarForEveryFamily) {
  cs::num::RandomStream rng(97);
  for (const std::string& spec : all_specs()) {
    SCOPED_TRACE(spec);
    const auto p = make_life_function(spec);
    const std::vector<double> xs = sample_points(*p, rng, 64);
    std::vector<double> batched(xs.size());
    p->eval_many(xs, batched);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      // EXPECT_EQ on doubles: the contract is bit-identity, not closeness.
      EXPECT_EQ(batched[i], p->survival(xs[i])) << "x = " << xs[i];
    }
  }
}

TEST(BatchedEval, DerivManyBitIdenticalToScalarForEveryFamily) {
  cs::num::RandomStream rng(131);
  for (const std::string& spec : all_specs()) {
    SCOPED_TRACE(spec);
    const auto p = make_life_function(spec);
    const std::vector<double> xs = sample_points(*p, rng, 64);
    std::vector<double> batched(xs.size());
    p->deriv_many(xs, batched);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batched[i], p->derivative(xs[i])) << "x = " << xs[i];
    }
  }
}

TEST(BatchedEval, MismatchedSpansThrow) {
  const auto p = make_life_function("uniform:L=1000");
  std::vector<double> xs(4, 1.0);
  std::vector<double> out(3);
  EXPECT_THROW(p->eval_many(xs, out), std::invalid_argument);
  EXPECT_THROW(p->deriv_many(xs, out), std::invalid_argument);
}

TEST(FunctionRef, PlainLambdaHasNoBatchChannelButStillBatches) {
  const auto square = [](double x) { return x * x; };
  const cs::num::FunctionRef f(square);
  EXPECT_FALSE(f.has_batch());
  EXPECT_EQ(f(3.0), 9.0);
  const double xs[] = {1.0, 2.0, 3.0};
  double out[3] = {};
  f.eval_many(xs, out, 3);  // scalar-loop fallback
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 4.0);
  EXPECT_EQ(out[2], 9.0);
}

TEST(FunctionRef, SurvivalRefForwardsTheBatchChannel) {
  const auto p = make_life_function("weibull:k=1.5,scale=500");
  const cs::SurvivalRef sref{*p};
  const cs::num::FunctionRef f(sref);
  EXPECT_TRUE(f.has_batch());
  const double xs[] = {0.0, 100.0, 500.0, 2000.0};
  double batched[4] = {};
  f.eval_many(xs, batched, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batched[i], p->survival(xs[i]));
    EXPECT_EQ(batched[i], f(xs[i]));
  }
}

TEST(FunctionRef, DerivativeRefForwardsTheBatchChannel) {
  const auto p = make_life_function("polyrisk:d=3,L=1000");
  const cs::DerivativeRef dref{*p};
  const cs::num::FunctionRef f(dref);
  EXPECT_TRUE(f.has_batch());
  const double xs[] = {10.0, 250.0, 900.0};
  double batched[3] = {};
  f.eval_many(xs, batched, 3);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(batched[i], p->derivative(xs[i]));
}

TEST(TabulatedLifeFunction, MeasuredBoundHoldsOnFreshOffKnotSamples) {
  cs::num::RandomStream rng(211);
  // Per-family quality ceiling: 513 uniform knots resolve light-tailed
  // families to ~1e-4, but lognormal's heavy tail stretches the horizon far
  // past its probability mass, so the steep head is coarsely sampled — the
  // measured bound is honest about that, which is exactly what this test
  // checks (the bound *holding* matters; its magnitude is the caller's
  // accept/reject decision).
  const struct {
    const char* spec;
    double quality;
  } kCases[] = {{"weibull:k=1.5,scale=500", 1e-3},
                {"lognormal:mu=3,sigma=1", 1e-1},
                {"geomlife:half=100", 1e-3}};
  for (const auto& [spec, quality] : kCases) {
    SCOPED_TRACE(spec);
    const auto base = make_life_function(spec);
    const cs::TabulatedLifeFunction table(*base, 513);
    ASSERT_GT(table.max_error(), 0.0);
    ASSERT_LT(table.max_error(), quality);
    // Fresh random samples (not knots, not the midpoints the bound was
    // measured at): the midpoint is where cubic interpolation error peaks,
    // so a modest slack over the measured max covers the whole segment.
    for (int i = 0; i < 256; ++i) {
      const double t = rng.uniform(0.0, table.table_horizon());
      const double err = std::abs(table.survival(t) - base->survival(t));
      EXPECT_LE(err, 2.0 * table.max_error()) << "t = " << t;
    }
  }
}

TEST(TabulatedLifeFunction, IsStillAValidLifeFunction) {
  const auto base = make_life_function("weibull:k=1.5,scale=500");
  const cs::TabulatedLifeFunction table(*base, 257);
  EXPECT_EQ(table.survival(0.0), 1.0);
  EXPECT_EQ(table.survival(-5.0), 1.0);
  EXPECT_EQ(table.survival(table.table_horizon() * 2.0), 0.0);
  EXPECT_TRUE(table.is_monotone_nonincreasing());
}
