// Conditional re-planning (Section 6's "progressive" observation).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "core/adaptive.hpp"
#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(ConditionalLifeFunction, BasicLaw) {
  const UniformRisk p(100.0);
  const ConditionalLifeFunction q(p, 40.0);
  // q(t) = p(40+t)/p(40) = (1 - (40+t)/100)/0.6.
  EXPECT_DOUBLE_EQ(q.survival(0.0), 1.0);
  EXPECT_NEAR(q.survival(30.0), 0.3 / 0.6, 1e-12);
  EXPECT_NEAR(q.survival(60.0), 0.0, 1e-12);
  ASSERT_TRUE(q.lifespan().has_value());
  EXPECT_DOUBLE_EQ(*q.lifespan(), 60.0);
}

TEST(ConditionalLifeFunction, UniformConditionsToUniform) {
  // Conditioning 1 - t/L on survival to tau gives 1 - t/(L - tau).
  const UniformRisk p(100.0);
  const ConditionalLifeFunction q(p, 25.0);
  const UniformRisk expected(75.0);
  for (double t : {0.0, 10.0, 40.0, 74.0})
    EXPECT_NEAR(q.survival(t), expected.survival(t), 1e-12) << t;
  EXPECT_EQ(q.shape(), Shape::Linear);
}

TEST(ConditionalLifeFunction, MemorylessIsInvariant) {
  const GeometricLifespan p(1.05);
  const ConditionalLifeFunction q(p, 123.0);
  for (double t : {0.0, 5.0, 20.0, 100.0})
    EXPECT_NEAR(q.survival(t), p.survival(t), 1e-12) << t;
}

TEST(ConditionalLifeFunction, DerivativeChainsThroughNormalizer) {
  const PolynomialRisk p(2, 50.0);
  const ConditionalLifeFunction q(p, 10.0);
  EXPECT_NEAR(q.derivative(5.0), p.derivative(15.0) / p.survival(10.0),
              1e-12);
}

TEST(ConditionalLifeFunction, InverseSurvivalRoundTrip) {
  const GeometricRisk p(30.0);
  const ConditionalLifeFunction q(p, 12.0);
  for (double u : {0.9, 0.5, 0.1})
    EXPECT_NEAR(q.survival(q.inverse_survival(u)), u, 1e-9) << u;
}

TEST(ConditionalLifeFunction, RejectsExhaustedTau) {
  const UniformRisk p(10.0);
  EXPECT_THROW(ConditionalLifeFunction(p, 10.0), std::invalid_argument);
  EXPECT_THROW(ConditionalLifeFunction(p, -1.0), std::invalid_argument);
}

TEST(ConditionalLifeFunction, CloneWorks) {
  const UniformRisk p(100.0);
  const ConditionalLifeFunction q(p, 30.0);
  const auto r = q.clone();
  EXPECT_DOUBLE_EQ(r->survival(20.0), q.survival(20.0));
  EXPECT_EQ(r->name(), q.name());
}

TEST(AdaptiveSchedule, MatchesStaticGuidelineUniform) {
  // Bellman consistency: with exact p, progressive conditional re-planning
  // reproduces the static guideline plan.
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto adaptive = adaptive_schedule(p, c);
  const auto statics = GuidelineScheduler(p, c).run();
  EXPECT_NEAR(adaptive.expected, statics.expected,
              2e-3 * statics.expected);
  ASSERT_GE(adaptive.schedule.size(), 2u);
  EXPECT_NEAR(adaptive.schedule[0], statics.schedule[0],
              0.05 * statics.schedule[0]);
}

TEST(AdaptiveSchedule, MemorylessGivesConstantPeriods) {
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto adaptive = adaptive_schedule(p, c);
  ASSERT_GE(adaptive.schedule.size(), 3u);
  const double t_star = bclr_geomlife_tstar(p, c);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(adaptive.schedule[k], t_star, 0.02 * t_star) << k;
}

TEST(AdaptiveSchedule, NearOptimalAcrossFamilies) {
  for (const char* spec :
       {"uniform:L=200", "polyrisk:d=3,L=200", "geomrisk:L=30",
        "geomlife:a=1.05"}) {
    const auto p = make_life_function(spec);
    const double c = 1.5;
    const auto adaptive = adaptive_schedule(*p, c);
    const auto statics = GuidelineScheduler(*p, c).run();
    EXPECT_GE(adaptive.expected, 0.99 * statics.expected) << spec;
  }
}

TEST(AdaptiveSchedule, RespectsMaxPeriods) {
  const GeometricLifespan p(1.02);
  AdaptiveOptions opt;
  opt.max_periods = 4;
  const auto r = adaptive_schedule(p, 1.0, opt);
  EXPECT_LE(r.schedule.size(), 4u);
}

TEST(AdaptiveSchedule, RejectsNonpositiveC) {
  const UniformRisk p(100.0);
  EXPECT_THROW(adaptive_schedule(p, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cs
