// The farm discrete-event simulation (exp11's engine).
#include <gtest/gtest.h>

#include "lifefn/families.hpp"
#include "sim/farm.hpp"

namespace cs::sim {
namespace {

FarmOptions small_farm_options(std::size_t tasks = 500) {
  FarmOptions opt;
  opt.task_count = tasks;
  opt.profile = {.kind = TaskProfile::Kind::Fixed, .mean = 1.0};
  opt.seed = 42;
  return opt;
}

TEST(Farm, DrainsBagWithGuidelinePolicy) {
  const UniformRisk life(200.0);
  auto stations = homogeneous_farm(4, life, 2.0, 50.0);
  const auto policy = make_guideline_policy();
  const auto r = run_farm(stations, *policy, small_farm_options());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_done, 500u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(r.work_done, 500.0, 1e-9);  // fixed task durations of 1.0
  EXPECT_EQ(r.stations.size(), 4u);
}

TEST(Farm, DeterministicForFixedSeed) {
  const UniformRisk life(200.0);
  const auto policy = make_guideline_policy();
  auto s1 = homogeneous_farm(3, life, 2.0, 50.0);
  auto s2 = homogeneous_farm(3, life, 2.0, 50.0);
  const auto r1 = run_farm(s1, *policy, small_farm_options());
  const auto r2 = run_farm(s2, *policy, small_farm_options());
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.tasks_done, r2.tasks_done);
  EXPECT_DOUBLE_EQ(r1.lost, r2.lost);
}

TEST(Farm, StationStatsSumToTotals) {
  const GeometricLifespan life(1.02);
  auto stations = homogeneous_farm(3, life, 1.0, 30.0);
  const auto policy = make_best_fixed_policy();
  const auto r = run_farm(stations, *policy, small_farm_options());
  std::size_t tasks = 0;
  double work = 0.0, lost = 0.0, overhead = 0.0;
  for (const auto& ws : r.stations) {
    tasks += ws.tasks_done;
    work += ws.work_done;
    lost += ws.lost;
    overhead += ws.overhead;
  }
  EXPECT_EQ(tasks, r.tasks_done);
  EXPECT_DOUBLE_EQ(work, r.work_done);
  EXPECT_DOUBLE_EQ(lost, r.lost);
  EXPECT_DOUBLE_EQ(overhead, r.overhead);
}

TEST(Farm, MoreStationsFinishFaster) {
  const UniformRisk life(200.0);
  const auto policy = make_guideline_policy();
  auto few = homogeneous_farm(2, life, 2.0, 50.0);
  auto many = homogeneous_farm(8, life, 2.0, 50.0);
  const auto opt = small_farm_options(2000);
  const auto r_few = run_farm(few, *policy, opt);
  const auto r_many = run_farm(many, *policy, opt);
  ASSERT_TRUE(r_few.completed);
  ASSERT_TRUE(r_many.completed);
  EXPECT_LT(r_many.makespan, r_few.makespan);
}

TEST(Farm, HorizonCapStopsSimulation) {
  const UniformRisk life(200.0);
  auto stations = homogeneous_farm(1, life, 2.0, 50.0);
  auto opt = small_farm_options(100000);
  opt.sim_horizon = 100.0;  // far too short to finish
  const auto policy = make_guideline_policy();
  const auto r = run_farm(stations, *policy, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.tasks_done, 100000u);
}

TEST(Farm, ImpossibleTaskDoesNotHang) {
  // A task longer than every period payload: the farm must terminate via
  // its event cap / horizon, not loop forever.
  const UniformRisk life(10.0);
  auto stations = homogeneous_farm(2, life, 2.0, 10.0);
  FarmOptions opt;
  opt.task_count = 10;
  opt.profile = {.kind = TaskProfile::Kind::Fixed, .mean = 50.0};  // > L
  opt.sim_horizon = 5000.0;
  opt.seed = 3;
  const auto policy = make_guideline_policy();
  const auto r = run_farm(stations, *policy, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tasks_done, 0u);
}

TEST(Farm, InterruptedWorkIsReissued) {
  // Risky stations lose periods, but the bag must still drain completely —
  // interrupted tasks return and are re-run.
  const GeometricRisk life(15.0);  // short, increasingly risky episodes
  auto stations = homogeneous_farm(4, life, 1.0, 10.0);
  const auto policy = make_best_fixed_policy();
  const auto r = run_farm(stations, *policy, small_farm_options(300));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_done, 300u);
  std::size_t interrupts = 0;
  for (const auto& ws : r.stations) interrupts += ws.interrupted_periods;
  EXPECT_GT(interrupts, 0u);  // the draconian contract did bite
  EXPECT_GT(r.lost, 0.0);
}

TEST(Farm, RejectsEmptyStationList) {
  std::vector<WorkstationConfig> none;
  const auto policy = make_guideline_policy();
  EXPECT_THROW(run_farm(none, *policy, small_farm_options()),
               std::invalid_argument);
}

TEST(HomogeneousFarm, BuildsLabeledClones) {
  const UniformRisk life(100.0);
  const auto stations = homogeneous_farm(3, life, 1.5, 20.0);
  ASSERT_EQ(stations.size(), 3u);
  EXPECT_EQ(stations[0].label, "ws0");
  EXPECT_EQ(stations[2].label, "ws2");
  for (const auto& ws : stations) {
    EXPECT_DOUBLE_EQ(ws.c, 1.5);
    EXPECT_DOUBLE_EQ(ws.life->survival(50.0), 0.5);
  }
}

TEST(Policy, FactoryByName) {
  for (const char* name :
       {"guideline", "greedy", "best-fixed", "doubling", "all-at-once", "dp"}) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW(make_policy("quantum"), std::invalid_argument);
}

TEST(Policy, FixedPolicyUsesGivenChunk) {
  const auto policy = make_fixed_policy(7.0);
  const UniformRisk life(100.0);
  const Schedule s = policy->make_schedule(life, 1.0);
  EXPECT_DOUBLE_EQ(s[0], 7.0);
  EXPECT_THROW(make_fixed_policy(0.0), std::invalid_argument);
}

TEST(Policy, SchedulesDifferAcrossPolicies) {
  const UniformRisk life(480.0);
  const auto g = make_guideline_policy()->make_schedule(life, 4.0);
  const auto d = make_doubling_policy()->make_schedule(life, 4.0);
  EXPECT_NE(g.periods(), d.periods());
}

}  // namespace
}  // namespace cs::sim
