#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "lifefn/families.hpp"
#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/farm.hpp"
#include "sim/policy.hpp"

namespace cs::obs {
namespace {

/// Save/restore the global observability flag around a test.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : saved_(enabled()) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(CounterConcurrency, TotalsExactUnderHammering) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Histogram, BucketsSumAndExtremes) {
  Histogram h(HistogramLayout{.min_value = 1.0, .base = 2.0, .buckets = 10});
  for (double v : {0.5, 1.0, 3.0, 100.0, 1e9}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 3.0 + 100.0 + 1e9, 1e-6);
  const auto buckets = h.bucket_counts();
  std::uint64_t total = 0;
  for (auto b : buckets) total += b;
  EXPECT_EQ(total, 5u);
  EXPECT_GE(buckets[0], 1u);            // 0.5 underflows into bucket 0
  EXPECT_GE(buckets.back(), 1u);        // 1e9 clamps into the top bucket
}

TEST(Histogram, QuantilesMonotoneAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p10, h.min());
  EXPECT_LE(p99, h.max());
  // Log-bucket estimates are coarse but must land in the right decade.
  EXPECT_GT(p50, 100.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(HistogramConcurrency, CountAndSumExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(2.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every observation is exactly 2.0, so the CAS-accumulated sum is exact.
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * kThreads * kPerThread);
}

TEST(Registry, LabeledLookupReturnsStableObjects) {
  Registry reg;
  Counter& a = reg.counter("requests", "policy=guideline");
  Counter& b = reg.counter("requests", "policy=greedy");
  Counter& a2 = reg.counter("requests", "policy=guideline");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.inc(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "requests{policy=greedy}");
  EXPECT_EQ(snap[1].name, "requests{policy=guideline}");
  EXPECT_DOUBLE_EQ(snap[1].value, 3.0);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
}

TEST(Registry, ResetZeroesButKeepsReferences) {
  Registry reg;
  Counter& c = reg.counter("n");
  Histogram& h = reg.histogram("h");
  c.inc(7);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the same object is still live and registered
  EXPECT_DOUBLE_EQ(reg.snapshot()[1].value, 1.0);
}

TEST(Registry, JsonAndCsvExportContainMetrics) {
  Registry reg;
  reg.counter("a.count").inc(5);
  reg.gauge("b.gauge").set(1.25);
  reg.histogram("c.hist").observe(3.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"name\":\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("name,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("\"a.count\",counter,5"), std::string::npos);
}

TEST(EventRing, OverflowDropsOldestKeepsNewest) {
  EventTracer tracer(/*shard_capacity=*/16, /*shards=*/4);  // capacity 64
  constexpr std::uint64_t kEvents = 200;
  for (std::uint64_t i = 0; i < kEvents; ++i)
    tracer.emit(EventType::Reclaim, static_cast<double>(i), 0, 0, 0);
  EXPECT_EQ(tracer.recorded(), kEvents);
  EXPECT_EQ(tracer.dropped(), kEvents - tracer.capacity());
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), tracer.capacity());
  // Sequence-sharded rings drop the globally oldest events: the survivors
  // are exactly the last `capacity` sequence numbers, in order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, kEvents - tracer.capacity() + i);
}

TEST(EventRing, ConcurrentRecordLosesNothingBelowCapacity) {
  EventTracer tracer(/*shard_capacity=*/1 << 12, /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i)
        tracer.emit(EventType::PeriodCompleted, static_cast<double>(i), t,
                    0, 0, 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // All sequence numbers distinct and returned sorted.
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const Event& x, const Event& y) {
                               return x.seq < y.seq;
                             }));
}

TEST(TraceJsonl, RoundTripPreservesEveryField) {
  EventTracer tracer(64, 1);
  tracer.set_station_labels({"alpha", "beta"});
  tracer.emit(EventType::PeriodCompleted, 123.456789012345, 1, 7, 3,
              58.25, 12.0, 2.0);
  tracer.emit(EventType::EpisodeStart, 0.125, 0, 0, 0, 0.0, 0.0, 99.5);
  tracer.emit(EventType::Reclaim, 1e-9, -1, 2, 0, 0.0, 0.0, 42.0);
  const auto events = tracer.drain();
  std::ostringstream os;
  tracer.write_jsonl(events, os);

  std::istringstream is(os.str());
  std::string line;
  std::vector<TraceRecord> parsed;
  while (std::getline(is, line)) {
    const auto rec = parse_jsonl(line);
    ASSERT_TRUE(rec.has_value()) << line;
    parsed.push_back(*rec);
  }
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& a = events[i];
    const Event& b = parsed[i].event;
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.station, b.station);
    EXPECT_EQ(a.episode, b.episode);
    EXPECT_EQ(a.period, b.period);
    EXPECT_DOUBLE_EQ(a.work, b.work);
    EXPECT_DOUBLE_EQ(a.tasks, b.tasks);
    EXPECT_DOUBLE_EQ(a.aux, b.aux);
  }
  EXPECT_EQ(parsed[0].station_label, "beta");
  EXPECT_EQ(parsed[1].station_label, "alpha");
  EXPECT_TRUE(parsed[2].station_label.empty());  // station -1: no label
}

TEST(TraceJsonl, MalformedLinesRejected) {
  EXPECT_FALSE(parse_jsonl("").has_value());
  EXPECT_FALSE(parse_jsonl("   ").has_value());
  EXPECT_FALSE(parse_jsonl("not json").has_value());
  EXPECT_FALSE(parse_jsonl("{\"type\":\"no_such_event\",\"seq\":1,\"t\":0}")
                   .has_value());
  EXPECT_FALSE(parse_jsonl("{\"seq\":1,\"t\":0}").has_value());  // no type
}

TEST(ScopeTimer, RecordsWhenEnabledOnly) {
  EnabledGuard guard(true);
  Histogram& h = timer_histogram("test_obs.scope_probe");
  h.reset();
  {
    CS_OBS_SCOPE("test_obs.scope_probe");
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);  // some nanoseconds elapsed

  set_enabled(false);
  {
    CS_OBS_SCOPE("test_obs.scope_probe");
  }
  EXPECT_EQ(h.count(), 1u);  // disabled scope observed nothing
}

// ---------------------------------------------------------------------------
// Simulator integration

sim::FarmOptions small_farm_options() {
  sim::FarmOptions opt;
  opt.task_count = 500;
  opt.profile = {.kind = sim::TaskProfile::Kind::Uniform,
                 .mean = 1.0,
                 .spread = 0.5};
  opt.seed = 20260806;
  return opt;
}

std::vector<sim::WorkstationConfig> small_farm_stations() {
  const UniformRisk life(240.0);
  return sim::homogeneous_farm(3, life, 2.0, 60.0);
}

TEST(FarmTrace, JsonlRoundTripMatchesWorkstationStats) {
  EnabledGuard guard(true);
  EventTracer tracer;
  auto opt = small_farm_options();
  opt.tracer = &tracer;
  auto stations = small_farm_stations();
  const auto policy = sim::make_policy("guideline");
  const sim::FarmResult result = sim::run_farm(stations, *policy, opt);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(tracer.dropped(), 0u);

  // Serialize and re-parse the full event log.
  const auto events = tracer.drain();
  std::ostringstream os;
  tracer.write_jsonl(events, os);
  struct Agg {
    std::size_t episodes = 0, completed = 0, interrupted = 0, tasks = 0;
    double work = 0.0, overhead = 0.0, lost = 0.0;
    std::string label;
  };
  std::vector<Agg> agg(result.stations.size());
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    const auto rec = parse_jsonl(line);
    ASSERT_TRUE(rec.has_value()) << line;
    const Event& e = rec->event;
    ASSERT_GE(e.station, 0);
    ASSERT_LT(static_cast<std::size_t>(e.station), agg.size());
    Agg& a = agg[static_cast<std::size_t>(e.station)];
    a.label = rec->station_label;
    switch (e.type) {
      case EventType::EpisodeStart: ++a.episodes; break;
      case EventType::PeriodCompleted:
        ++a.completed;
        a.tasks += static_cast<std::size_t>(e.tasks);
        a.work += e.work;
        a.overhead += e.aux;
        break;
      case EventType::PeriodInterrupted:
        ++a.interrupted;
        a.lost += e.work;
        break;
      default: break;
    }
  }

  // The trace-derived summary must match the simulator's own counters.
  for (std::size_t i = 0; i < result.stations.size(); ++i) {
    const sim::WorkstationStats& ws = result.stations[i];
    EXPECT_EQ(agg[i].label, ws.label);
    EXPECT_EQ(agg[i].episodes, ws.episodes);
    EXPECT_EQ(agg[i].completed, ws.completed_periods);
    EXPECT_EQ(agg[i].interrupted, ws.interrupted_periods);
    EXPECT_EQ(agg[i].tasks, ws.tasks_done);
    EXPECT_DOUBLE_EQ(agg[i].work, ws.work_done);
    EXPECT_DOUBLE_EQ(agg[i].overhead, ws.overhead);
    EXPECT_DOUBLE_EQ(agg[i].lost, ws.lost);
  }
}

TEST(FarmTrace, InstrumentationDoesNotChangeFarmResult) {
  const auto policy = sim::make_policy("guideline");

  set_enabled(false);
  auto stations_plain = small_farm_stations();
  const sim::FarmResult plain =
      sim::run_farm(stations_plain, *policy, small_farm_options());

  sim::FarmResult traced;
  {
    EnabledGuard guard(true);
    EventTracer tracer;
    auto opt = small_farm_options();
    opt.tracer = &tracer;
    auto stations_traced = small_farm_stations();
    traced = sim::run_farm(stations_traced, *policy, opt);
  }

  // Tracing and metrics are pure observation: bit-identical outcomes.
  EXPECT_EQ(plain.completed, traced.completed);
  EXPECT_EQ(plain.tasks_done, traced.tasks_done);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.work_done, traced.work_done);
  EXPECT_EQ(plain.overhead, traced.overhead);
  EXPECT_EQ(plain.lost, traced.lost);
  ASSERT_EQ(plain.stations.size(), traced.stations.size());
  for (std::size_t i = 0; i < plain.stations.size(); ++i) {
    EXPECT_EQ(plain.stations[i].episodes, traced.stations[i].episodes);
    EXPECT_EQ(plain.stations[i].completed_periods,
              traced.stations[i].completed_periods);
    EXPECT_EQ(plain.stations[i].interrupted_periods,
              traced.stations[i].interrupted_periods);
    EXPECT_EQ(plain.stations[i].work_done, traced.stations[i].work_done);
    EXPECT_EQ(plain.stations[i].lost, traced.stations[i].lost);
  }
}

TEST(FarmMetrics, GlobalCountersTrackFarmTotals) {
  EnabledGuard guard(true);
  auto& reg = Registry::global();
  Counter& completed = reg.counter("sim.farm.periods_completed");
  Counter& interrupted = reg.counter("sim.farm.periods_interrupted");
  Counter& tasks = reg.counter("sim.farm.tasks_banked");
  const std::uint64_t completed0 = completed.value();
  const std::uint64_t interrupted0 = interrupted.value();
  const std::uint64_t tasks0 = tasks.value();

  const auto policy = sim::make_policy("guideline");
  auto stations = small_farm_stations();
  const sim::FarmResult r =
      sim::run_farm(stations, *policy, small_farm_options());

  std::size_t want_completed = 0, want_interrupted = 0;
  for (const auto& ws : r.stations) {
    want_completed += ws.completed_periods;
    want_interrupted += ws.interrupted_periods;
  }
  EXPECT_EQ(completed.value() - completed0, want_completed);
  EXPECT_EQ(interrupted.value() - interrupted0, want_interrupted);
  EXPECT_EQ(tasks.value() - tasks0, r.tasks_done);
}

Span make_span(std::uint64_t trace, std::uint64_t id, const char* name,
               std::uint64_t start, std::uint64_t end) {
  Span s;
  s.trace_id = trace;
  s.span_id = id;
  s.name = name;
  s.start_ns = start;
  s.end_ns = end;
  return s;
}

TEST(SpanIds, HexRoundTripAndRejects) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xdeadbeefULL}, ~std::uint64_t{0}}) {
    const std::string hex = span_id_hex(id);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = parse_span_id_hex(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(parse_span_id_hex("").has_value());
  EXPECT_FALSE(parse_span_id_hex("xyz").has_value());
  EXPECT_FALSE(parse_span_id_hex("00112233445566778").has_value());  // 17
}

TEST(SpanIds, TraceIdFromLabelIsStableAndNonzero) {
  // Hex labels parse exactly, so a client can find its own ids in the dump.
  EXPECT_EQ(trace_id_from_label("00000000000000ff"), 0xffu);
  EXPECT_EQ(trace_id_from_label("beef"), 0xbeefu);
  // Arbitrary labels hash (deterministically) and never collide with zero.
  const std::uint64_t a = trace_id_from_label("load-gen-run-1");
  EXPECT_EQ(a, trace_id_from_label("load-gen-run-1"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, trace_id_from_label("load-gen-run-2"));
  EXPECT_NE(trace_id_from_label(""), 0u);
}

TEST(SpanRing, RecordDrainOrderAndOverflow) {
  SpanCollector collector(/*shard_capacity=*/8, /*shards=*/4);  // capacity 32
  collector.set_sample_every(1);
  constexpr std::uint64_t kSpans = 100;
  for (std::uint64_t i = 0; i < kSpans; ++i)
    collector.record(make_span(1, i + 1, "solve", i, i + 1));
  EXPECT_EQ(collector.recorded(), kSpans);
  EXPECT_EQ(collector.dropped(), kSpans - collector.capacity());
  const auto spans = collector.drain();
  ASSERT_EQ(spans.size(), collector.capacity());
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LT(spans[i - 1].seq, spans[i].seq);
  // Drain empties the rings but keeps the tallies.
  EXPECT_TRUE(collector.drain().empty());
  EXPECT_EQ(collector.recorded(), kSpans);
}

TEST(SpanSampling, EveryNthAndDisabled) {
  SpanCollector collector(16, 2);
  // Disabled: no admissions, and the guard reports off.
  EXPECT_FALSE(collector.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(collector.admit());
  // Every request.
  collector.set_sample_every(1);
  EXPECT_TRUE(collector.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(collector.admit());
  // Every 4th: exactly 25 of 100 admitted.
  collector.set_sample_every(4);
  int admitted = 0;
  for (int i = 0; i < 100; ++i) admitted += collector.admit() ? 1 : 0;
  EXPECT_EQ(admitted, 25);
}

TEST(SpanJsonl, RoundTripPreservesEveryField) {
  SpanCollector collector(16, 1);
  Span s = make_span(0xabcdef0123456789ULL, 42, "queue_wait",
                     1234567890123456789ULL, 1234567890999999999ULL);
  s.parent_id = 7;
  s.tag = "cold";
  s.track = 3;
  collector.record(std::move(s));
  collector.record(make_span(5, 6, "request", 10, 20));  // no parent/tag/track

  std::ostringstream os;
  SpanCollector::write_jsonl(collector.drain(), os);
  std::istringstream is(os.str());
  std::string line;

  ASSERT_TRUE(std::getline(is, line));
  const auto r1 = parse_span_jsonl(line);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->trace_id, 0xabcdef0123456789ULL);
  EXPECT_EQ(r1->span_id, 42u);
  EXPECT_EQ(r1->parent_id, 7u);
  EXPECT_EQ(r1->name, "queue_wait");
  EXPECT_EQ(r1->tag, "cold");
  // Nanosecond timestamps exceed a double's exact-integer range; the parser
  // must keep every digit.
  EXPECT_EQ(r1->start_ns, 1234567890123456789ULL);
  EXPECT_EQ(r1->end_ns, 1234567890999999999ULL);
  EXPECT_EQ(r1->track, 3);
  EXPECT_EQ(r1->seq, 0u);

  ASSERT_TRUE(std::getline(is, line));
  const auto r2 = parse_span_jsonl(line);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->parent_id, 0u);
  EXPECT_EQ(r2->tag, "");
  EXPECT_EQ(r2->track, -1);
  EXPECT_EQ(r2->seq, 1u);

  EXPECT_FALSE(parse_span_jsonl("").has_value());
  EXPECT_FALSE(parse_span_jsonl("not json").has_value());
  EXPECT_FALSE(parse_span_jsonl("{\"name\":\"solve\"}").has_value());
}

TEST(SpanChromeExport, OneTrackPerStage) {
  std::vector<Span> spans;
  spans.push_back(make_span(1, 2, "parse", 1000, 2000));
  spans.push_back(make_span(1, 3, "solve", 2000, 5000));
  spans.push_back(make_span(2, 4, "parse", 3000, 4000));
  std::ostringstream os;
  SpanCollector::write_chrome_trace(spans, os);
  const std::string out = os.str();
  // One thread_name metadata row per distinct stage, not per span.
  std::size_t meta = 0;
  for (std::size_t pos = out.find("thread_name"); pos != std::string::npos;
       pos = out.find("thread_name", pos + 1))
    ++meta;
  EXPECT_EQ(meta, 2u);
  EXPECT_NE(out.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"solve\""), std::string::npos);
  // Timestamps are rebased to the earliest span (1000ns -> ts 0).
  EXPECT_NE(out.find("\"ts\":0.000000"), std::string::npos);
}

TEST(SpanCollectorConcurrency, DistinctIdsAndNoLossBelowCapacity) {
  SpanCollector collector(1 << 12, 8);
  collector.set_sample_every(1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.record(make_span(static_cast<std::uint64_t>(t) + 1,
                                   collector.next_id(), "solve",
                                   static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(i) + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collector.dropped(), 0u);
  const auto spans = collector.drain();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) ids.insert(s.span_id);
  EXPECT_EQ(ids.size(), spans.size());
}

}  // namespace
}  // namespace cs::obs
