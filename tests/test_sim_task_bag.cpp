#include "sim/task_bag.hpp"

#include <gtest/gtest.h>

#include "numerics/stats.hpp"

namespace cs::sim {
namespace {

TEST(TaskProfile, FixedDurations) {
  num::RandomStream rng(1);
  const auto d = generate_task_durations(5, {.kind = TaskProfile::Kind::Fixed,
                                             .mean = 2.5},
                                         rng);
  ASSERT_EQ(d.size(), 5u);
  for (double x : d) EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(TaskProfile, UniformWithinBounds) {
  num::RandomStream rng(2);
  const auto d = generate_task_durations(
      1000, {.kind = TaskProfile::Kind::Uniform, .mean = 4.0, .spread = 0.5},
      rng);
  for (double x : d) {
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 6.0);
  }
  num::RunningStats s;
  for (double x : d) s.add(x);
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(TaskProfile, BimodalTwoValues) {
  num::RandomStream rng(3);
  const auto d = generate_task_durations(
      500, {.kind = TaskProfile::Kind::Bimodal, .mean = 2.0}, rng);
  int shorts = 0, longs = 0;
  for (double x : d) {
    if (x == 1.0) ++shorts;
    else if (x == 4.0) ++longs;
    else FAIL() << "unexpected duration " << x;
  }
  EXPECT_GT(shorts, 150);
  EXPECT_GT(longs, 150);
}

TEST(TaskProfile, ValidatesParameters) {
  num::RandomStream rng(4);
  EXPECT_THROW(generate_task_durations(
                   1, {.kind = TaskProfile::Kind::Fixed, .mean = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      generate_task_durations(
          1, {.kind = TaskProfile::Kind::Uniform, .mean = 1.0, .spread = 1.5},
          rng),
      std::invalid_argument);
}

TEST(TaskBag, DrawRespectsBudget) {
  num::RandomStream rng(5);
  TaskBag bag(10, {.kind = TaskProfile::Kind::Fixed, .mean = 2.0}, rng);
  EXPECT_EQ(bag.size(), 10u);
  EXPECT_DOUBLE_EQ(bag.remaining_work(), 20.0);
  const auto drawn = bag.draw(7.0);  // fits 3 tasks of 2.0
  EXPECT_EQ(drawn.size(), 3u);
  EXPECT_EQ(bag.size(), 7u);
  EXPECT_DOUBLE_EQ(bag.remaining_work(), 14.0);
}

TEST(TaskBag, DrawNothingWhenFirstTaskTooBig) {
  num::RandomStream rng(6);
  TaskBag bag(3, {.kind = TaskProfile::Kind::Fixed, .mean = 5.0}, rng);
  EXPECT_TRUE(bag.draw(4.9).empty());
  EXPECT_EQ(bag.size(), 3u);
}

TEST(TaskBag, PutBackRestoresFrontOrder) {
  num::RandomStream rng(7);
  TaskBag bag(4, {.kind = TaskProfile::Kind::Fixed, .mean = 1.0}, rng);
  auto drawn = bag.draw(2.0);
  ASSERT_EQ(drawn.size(), 2u);
  bag.put_back(drawn);
  EXPECT_EQ(bag.size(), 4u);
  EXPECT_DOUBLE_EQ(bag.remaining_work(), 4.0);
  // Draw everything: total must be conserved.
  const auto all = bag.draw(100.0);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(bag.empty());
  EXPECT_DOUBLE_EQ(bag.remaining_work(), 0.0);
}

TEST(TaskBag, EmptyBagBehaves) {
  TaskBag bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_TRUE(bag.draw(10.0).empty());
  bag.put_back({1.5});
  EXPECT_EQ(bag.size(), 1u);
  EXPECT_DOUBLE_EQ(bag.remaining_work(), 1.5);
}

}  // namespace
}  // namespace cs::sim
