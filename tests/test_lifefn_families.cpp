// Properties of the concrete life-function families (Sections 2.1 and 3.1).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"
#include "numerics/derivative.hpp"

namespace cs {
namespace {

// ---------------------------------------------------------------- uniform

TEST(UniformRisk, Values) {
  const UniformRisk p(100.0);
  EXPECT_DOUBLE_EQ(p.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.survival(50.0), 0.5);
  EXPECT_DOUBLE_EQ(p.survival(100.0), 0.0);
  EXPECT_DOUBLE_EQ(p.survival(150.0), 0.0);
  EXPECT_DOUBLE_EQ(p.survival(-3.0), 1.0);
}

TEST(UniformRisk, Derivative) {
  const UniformRisk p(100.0);
  EXPECT_DOUBLE_EQ(p.derivative(50.0), -0.01);
  EXPECT_DOUBLE_EQ(p.derivative(150.0), 0.0);
}

TEST(UniformRisk, Metadata) {
  const UniformRisk p(100.0);
  EXPECT_EQ(p.shape(), Shape::Linear);
  ASSERT_TRUE(p.lifespan().has_value());
  EXPECT_DOUBLE_EQ(*p.lifespan(), 100.0);
  EXPECT_DOUBLE_EQ(p.horizon(), 100.0);
  EXPECT_NEAR(p.mean_lifespan(), 50.0, 1e-9);
}

TEST(UniformRisk, RejectsBadLifespan) {
  EXPECT_THROW(UniformRisk(0.0), std::invalid_argument);
  EXPECT_THROW(UniformRisk(-5.0), std::invalid_argument);
}

// ---------------------------------------------------------------- polyrisk

TEST(PolynomialRisk, ReducesToUniformAtD1) {
  const PolynomialRisk p(1, 80.0);
  const UniformRisk u(80.0);
  for (double t : {0.0, 10.0, 40.0, 79.0, 81.0})
    EXPECT_DOUBLE_EQ(p.survival(t), u.survival(t));
  EXPECT_EQ(p.shape(), Shape::Linear);
}

TEST(PolynomialRisk, HigherDegreeConcave) {
  const PolynomialRisk p(3, 80.0);
  EXPECT_EQ(p.shape(), Shape::Concave);
  EXPECT_DOUBLE_EQ(p.survival(40.0), 1.0 - 0.125);
}

TEST(PolynomialRisk, MeanLifespanClosedForm) {
  // ∫ (1 - (t/L)^d) dt = L d/(d+1).
  for (int d : {1, 2, 4}) {
    const PolynomialRisk p(d, 60.0);
    EXPECT_NEAR(p.mean_lifespan(), 60.0 * d / (d + 1.0), 1e-8) << "d=" << d;
  }
}

TEST(PolynomialRisk, RejectsBadDegree) {
  EXPECT_THROW(PolynomialRisk(0, 10.0), std::invalid_argument);
}

// ---------------------------------------------------------------- geomlife

TEST(GeometricLifespan, SurvivalAndHalfLife) {
  const auto p = GeometricLifespan::from_half_life(50.0);
  EXPECT_NEAR(p.survival(50.0), 0.5, 1e-12);
  EXPECT_NEAR(p.survival(100.0), 0.25, 1e-12);
  EXPECT_EQ(p.shape(), Shape::Convex);
  EXPECT_FALSE(p.lifespan().has_value());
}

TEST(GeometricLifespan, MeanLifespanIsInverseLogA) {
  const GeometricLifespan p(1.05);
  EXPECT_NEAR(p.mean_lifespan(), 1.0 / std::log(1.05), 1e-6);
}

TEST(GeometricLifespan, RejectsAAtMostOne) {
  EXPECT_THROW(GeometricLifespan(1.0), std::invalid_argument);
  EXPECT_THROW(GeometricLifespan(0.5), std::invalid_argument);
}

TEST(GeometricLifespan, HorizonDecaysBelowEps) {
  const GeometricLifespan p(1.1);
  const double h = p.horizon(1e-6);
  EXPECT_NEAR(p.survival(h), 1e-6, 1e-9);
}

// ---------------------------------------------------------------- geomrisk

TEST(GeometricRisk, EndpointValues) {
  const GeometricRisk p(20.0);
  EXPECT_DOUBLE_EQ(p.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.survival(20.0), 0.0);
  EXPECT_DOUBLE_EQ(p.survival(25.0), 0.0);
  EXPECT_EQ(p.shape(), Shape::Concave);
}

TEST(GeometricRisk, MatchesDirectFormulaSmallL) {
  const GeometricRisk p(10.0);
  for (double t : {1.0, 3.0, 7.5, 9.9}) {
    const double direct =
        (std::exp2(10.0) - std::exp2(t)) / (std::exp2(10.0) - 1.0);
    EXPECT_NEAR(p.survival(t), direct, 1e-12) << "t=" << t;
  }
}

TEST(GeometricRisk, LargeLifespanNoOverflow) {
  // Regression: 2^L overflowed for L ~ 1100 before the log-space rewrite.
  const GeometricRisk p(5000.0);
  EXPECT_GT(p.survival(100.0), 0.999);
  EXPECT_LT(p.survival(4999.9), 1.0);
  EXPECT_GT(p.survival(4999.0), 0.0);
}

// ---------------------------------------------------------------- weibull

TEST(Weibull, K1IsExponential) {
  const Weibull w(1.0, 90.0);
  const GeometricLifespan g(std::exp(1.0 / 90.0));
  for (double t : {0.0, 10.0, 90.0, 300.0})
    EXPECT_NEAR(w.survival(t), g.survival(t), 1e-12);
  EXPECT_EQ(w.shape(), Shape::Convex);
}

TEST(Weibull, KAbove1IsGeneralShape) {
  EXPECT_EQ(Weibull(2.0, 50.0).shape(), Shape::General);
}

TEST(Weibull, SurvivalValues) {
  const Weibull w(2.0, 10.0);
  EXPECT_NEAR(w.survival(10.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(w.survival(20.0), std::exp(-4.0), 1e-12);
}

// ---------------------------------------------------------------- pareto

TEST(ParetoTail, SurvivalAndDerivative) {
  const ParetoTail p(2.0);
  EXPECT_DOUBLE_EQ(p.survival(0.0), 1.0);
  EXPECT_NEAR(p.survival(1.0), 0.25, 1e-12);
  EXPECT_NEAR(p.derivative(1.0), -2.0 * std::pow(2.0, -3.0), 1e-12);
  EXPECT_EQ(p.shape(), Shape::Convex);
}

// ------------------------------------------------------------ piecewise

TEST(PiecewiseLinear, InterpolatesAndClamps) {
  const PiecewiseLinear p({0.0, 10.0, 30.0}, {1.0, 0.4, 0.0});
  EXPECT_DOUBLE_EQ(p.survival(5.0), 0.7);
  EXPECT_DOUBLE_EQ(p.survival(20.0), 0.2);
  EXPECT_DOUBLE_EQ(p.survival(40.0), 0.0);
  ASSERT_TRUE(p.lifespan().has_value());
  EXPECT_DOUBLE_EQ(*p.lifespan(), 30.0);
}

TEST(PiecewiseLinear, DetectsConvexShape) {
  // Slopes -0.06 then -0.01: increasing derivative = convex.
  const PiecewiseLinear p({0.0, 10.0, 50.0}, {1.0, 0.4, 0.0});
  EXPECT_EQ(p.shape(), Shape::Convex);
}

TEST(PiecewiseLinear, DetectsConcaveShape) {
  const PiecewiseLinear p({0.0, 40.0, 50.0}, {1.0, 0.6, 0.0});
  EXPECT_EQ(p.shape(), Shape::Concave);
}

TEST(PiecewiseLinear, RejectsBadKnots) {
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {0.9, 0.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0, 0.5}, {1.0, 0.5, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0, 2.0}, {1.0, 0.5, 0.6}),
               std::invalid_argument);
}

// ------------------------------------------------------------- empirical

TEST(EmpiricalLifeFunction, InterpolatesSamples) {
  const EmpiricalLifeFunction p({0.0, 5.0, 10.0, 20.0},
                                {1.0, 0.7, 0.3, 0.0});
  EXPECT_DOUBLE_EQ(p.survival(0.0), 1.0);
  EXPECT_NEAR(p.survival(5.0), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(p.survival(20.0), 0.0);
  EXPECT_TRUE(p.is_monotone_nonincreasing());
}

TEST(EmpiricalLifeFunction, ExtendsToZeroWhenTruncated) {
  const EmpiricalLifeFunction p({0.0, 5.0, 10.0}, {1.0, 0.6, 0.2});
  ASSERT_TRUE(p.lifespan().has_value());
  EXPECT_GT(*p.lifespan(), 10.0);
  EXPECT_DOUBLE_EQ(p.survival(*p.lifespan()), 0.0);
}

// --------------------------------------------- cross-family property sweep

struct FamilyCase {
  const char* spec;
  bool bounded;
};

class FamilyProperties : public ::testing::TestWithParam<FamilyCase> {
 protected:
  std::unique_ptr<LifeFunction> fn() const {
    return make_life_function(GetParam().spec);
  }
};

TEST_P(FamilyProperties, SurvivalStartsAtOne) {
  EXPECT_DOUBLE_EQ(fn()->survival(0.0), 1.0);
}

TEST_P(FamilyProperties, MonotoneNonincreasing) {
  EXPECT_TRUE(fn()->is_monotone_nonincreasing(1024));
}

TEST_P(FamilyProperties, ValuesInUnitInterval) {
  const auto p = fn();
  const double hi = p->horizon(1e-9);
  for (int i = 0; i <= 200; ++i) {
    const double t = hi * i / 200.0;
    const double v = p->survival(t);
    EXPECT_GE(v, 0.0) << "t=" << t;
    EXPECT_LE(v, 1.0) << "t=" << t;
  }
}

TEST_P(FamilyProperties, AnalyticDerivativeMatchesNumeric) {
  const auto p = fn();
  const double hi = p->horizon(1e-6);
  for (double frac : {0.1, 0.3, 0.5, 0.7}) {
    const double t = frac * hi;
    const double numeric = num::derivative(
        [&](double x) { return p->survival(x); }, t, 1e-6 * std::max(1.0, t));
    EXPECT_NEAR(p->derivative(t), numeric,
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "t=" << t;
  }
}

TEST_P(FamilyProperties, DerivativeNonpositive) {
  const auto p = fn();
  const double hi = p->horizon(1e-9);
  for (int i = 1; i < 100; ++i)
    EXPECT_LE(p->derivative(hi * i / 100.0), 1e-12);
}

TEST_P(FamilyProperties, InverseSurvivalRoundTrip) {
  const auto p = fn();
  for (double u : {0.95, 0.6, 0.25, 0.03, 1e-4}) {
    const double t = p->inverse_survival(u);
    EXPECT_NEAR(p->survival(t), u, 1e-8) << "u=" << u;
  }
  EXPECT_DOUBLE_EQ(p->inverse_survival(1.0), 0.0);
  EXPECT_THROW(p->inverse_survival(0.0), std::invalid_argument);
  EXPECT_THROW(p->inverse_survival(1.5), std::invalid_argument);
}

TEST_P(FamilyProperties, BoundednessMatchesFamily) {
  EXPECT_EQ(fn()->lifespan().has_value(), GetParam().bounded);
}

TEST_P(FamilyProperties, CloneIsIndistinguishable) {
  const auto p = fn();
  const auto q = p->clone();
  EXPECT_EQ(p->name(), q->name());
  EXPECT_EQ(p->shape(), q->shape());
  const double hi = p->horizon(1e-6);
  for (int i = 0; i <= 50; ++i) {
    const double t = hi * i / 50.0;
    EXPECT_DOUBLE_EQ(p->survival(t), q->survival(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyProperties,
    ::testing::Values(FamilyCase{"uniform:L=100", true},
                      FamilyCase{"uniform:L=1", true},
                      FamilyCase{"polyrisk:d=2,L=50", true},
                      FamilyCase{"polyrisk:d=5,L=500", true},
                      FamilyCase{"geomlife:a=1.01", false},
                      FamilyCase{"geomlife:a=2", false},
                      FamilyCase{"geomrisk:L=12", true},
                      FamilyCase{"geomrisk:L=60", true},
                      FamilyCase{"weibull:k=1,scale=40", false},
                      FamilyCase{"weibull:k=1.7,scale=25", false},
                      FamilyCase{"pareto:d=2.5", false},
                      FamilyCase{"lognormal:mu=3,sigma=0.5", false},
                      FamilyCase{"lognormal:mu=1,sigma=1.2", false}));

TEST(LogNormal, MedianAndSurvival) {
  const LogNormal p(3.0, 0.7);
  EXPECT_NEAR(p.median(), std::exp(3.0), 1e-12);
  EXPECT_NEAR(p.survival(p.median()), 0.5, 1e-12);
  EXPECT_EQ(p.shape(), Shape::General);
}

TEST(LogNormal, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cs
