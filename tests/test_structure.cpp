// Section 5: structural properties of optimal schedules.
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "core/guideline.hpp"
#include "core/recurrence.hpp"
#include "core/structure.hpp"
#include "lifefn/factory.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Theorem52, ConcaveDecrementCheckDetectsViolation) {
  // 10, 8 with c = 1: 8 > 10 - 1 = 9? no. 10, 9.5: 9.5 > 9 yes -> violation.
  EXPECT_TRUE(check_concave_decrement(Schedule({10.0, 9.0}), 1.0).holds);
  const auto bad = check_concave_decrement(Schedule({10.0, 9.5}), 1.0);
  EXPECT_FALSE(bad.holds);
  EXPECT_EQ(bad.violating_index, 0u);
  EXPECT_NEAR(bad.violation, 0.5, 1e-12);
}

TEST(Theorem52, ConvexGrowthCheckDetectsViolation) {
  EXPECT_TRUE(check_convex_growth(Schedule({10.0, 9.5}), 1.0).holds);
  const auto bad = check_convex_growth(Schedule({10.0, 8.0}), 1.0);
  EXPECT_FALSE(bad.holds);
  EXPECT_NEAR(bad.violation, 1.0, 1e-12);
}

TEST(Theorem52, SingleAndEmptySchedulesTriviallyPass) {
  EXPECT_TRUE(check_concave_decrement(Schedule({5.0}), 1.0).holds);
  EXPECT_TRUE(check_concave_decrement(Schedule(), 1.0).holds);
  EXPECT_TRUE(check_convex_growth(Schedule({5.0}), 1.0).holds);
}

TEST(Corollary51, StrictDecreaseCheck) {
  EXPECT_TRUE(check_strictly_decreasing(Schedule({5.0, 4.0, 3.0})).holds);
  EXPECT_FALSE(check_strictly_decreasing(Schedule({5.0, 5.0})).holds);
  EXPECT_FALSE(check_strictly_decreasing(Schedule({5.0, 6.0})).holds);
}

TEST(Corollary52, PeriodCountBound) {
  EXPECT_EQ(cor52_max_periods(10.0, 2.0), 5u);
  EXPECT_EQ(cor52_max_periods(9.9, 2.0), 4u);
  EXPECT_EQ(cor52_max_periods(0.0, 2.0), 0u);
  EXPECT_THROW((void)cor52_max_periods(5.0, 0.0), std::invalid_argument);
}

TEST(Corollary53, ClosedForm) {
  // m < ceil(sqrt(2L/c + 1/4) + 1/2); for L=480, c=4: sqrt(240.25)+0.5 =
  // 16.0 -> ceil 16 -> max m = 15... sqrt(240.25) = 15.5001..., +0.5 =
  // 16.0001 -> ceil = 17, max admissible 16.
  const std::size_t m = cor53_max_periods(480.0, 4.0);
  const double bound = std::ceil(std::sqrt(2.0 * 480.0 / 4.0 + 0.25) + 0.5);
  EXPECT_EQ(m, static_cast<std::size_t>(bound) - 1);
  EXPECT_THROW((void)cor53_max_periods(0.0, 1.0), std::invalid_argument);
}

TEST(Corollary53, TightForUniformRisk) {
  // [3]: for p = 1 - t/L the optimal m equals (5.8) with floors; our
  // optimal-search period count must be within the corollary bound and
  // close to it.
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  const std::size_t bound = cor53_max_periods(480.0, 4.0);
  EXPECT_LE(g.schedule.size(), bound);
  // The floor form counts marginal trailing periods of length ~c that add no
  // work; the searched optimum drops them, so it sits a couple below.
  const auto floor_form = static_cast<std::size_t>(
      std::floor(std::sqrt(2.0 * 480.0 / 4.0 + 0.25) + 0.5));
  EXPECT_GE(g.schedule.size() + 3, floor_form);
}

TEST(Corollary54, T0LowerBoundFormula) {
  EXPECT_DOUBLE_EQ(cor54_t0_lower(480.0, 15, 4.0), 480.0 / 15.0 + 28.0);
  EXPECT_THROW((void)cor54_t0_lower(480.0, 0, 4.0), std::invalid_argument);
}

TEST(Corollary54, HoldsForGuidelineUniformOptimum) {
  // Cor 5.4's derivation uses the schedule's own span (the optimal schedule
  // may deliberately stop short of L, Sec. 2.1), so test with the span.
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  EXPECT_GE(g.chosen_t0 + 1e-6,
            cor54_t0_lower(g.schedule.total_duration(), g.schedule.size(), c));
}

TEST(Theorem51, RecurrenceScheduleBeatsPerturbationsConcave) {
  // Theorem 5.1: (3.6)-satisfying schedules beat every [k, ±δ]-perturbation
  // under concave p.
  const PolynomialRisk p(2, 400.0);
  const double c = 2.0;
  const auto r = RecurrenceEngine(p, c).generate(90.0);
  ASSERT_GE(r.schedule.size(), 3u);
  const auto lo = check_local_optimality(r.schedule, p, c,
                                         {1e-4, 1e-3, 1e-2, 1e-1});
  EXPECT_TRUE(lo.locally_optimal)
      << "gain " << lo.best_gain << " at k=" << lo.index
      << " delta=" << lo.delta;
}

TEST(Theorem51, DetectsNonOptimalSchedule) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  // Increasing periods grossly violate optimality for concave p.
  const Schedule bad({40.0, 80.0, 120.0});
  const auto lo = check_local_optimality(bad, p, c, {1.0, 5.0});
  EXPECT_FALSE(lo.locally_optimal);
  EXPECT_GT(lo.best_gain, 0.0);
}

TEST(LocalOptimality, ShortSchedulesTrivial) {
  const UniformRisk p(100.0);
  EXPECT_TRUE(check_local_optimality(Schedule({10.0}), p, 1.0).locally_optimal);
  EXPECT_TRUE(check_local_optimality(Schedule(), p, 1.0).locally_optimal);
}

TEST(ShiftGain, OptimalScheduleResistsShifts) {
  // Theorem 3.1's proof compares S with its shifts: at the optimum every
  // shift must not help.
  const UniformRisk p(480.0);
  const double c = 4.0;
  const auto g = GuidelineScheduler(p, c).run();
  for (std::size_t k : {std::size_t{0}, std::size_t{1}}) {
    for (double d : {-0.5, 0.5}) {
      EXPECT_GE(shift_gain(g.schedule, p, c, k, d), -1e-6)
          << "k=" << k << " d=" << d;
    }
  }
}

TEST(ShiftGain, BadScheduleImprovableByShift) {
  const UniformRisk p(480.0);
  const double c = 4.0;
  const Schedule bad({200.0, 100.0});
  bool improvable = false;
  for (std::size_t k : {std::size_t{0}, std::size_t{1}})
    for (double d : {-40.0, -20.0, 20.0, 40.0})
      if (shift_gain(bad, p, c, k, d) < -1e-9) improvable = true;
  EXPECT_TRUE(improvable);
}

// Property sweep: guideline schedules satisfy the Theorem 5.2 bound of
// their shape class across families/overheads.
struct StructCase {
  const char* spec;
  double c;
  bool concave;
};

class GuidelineStructure : public ::testing::TestWithParam<StructCase> {};

TEST_P(GuidelineStructure, Theorem52OnGuidelineSchedules) {
  const auto p = make_life_function(GetParam().spec);
  const double c = GetParam().c;
  const auto g = GuidelineScheduler(*p, c).run();
  ASSERT_GE(g.schedule.size(), 2u);
  if (GetParam().concave) {
    EXPECT_TRUE(check_concave_decrement(g.schedule, c, 1e-6).holds);
    EXPECT_TRUE(check_strictly_decreasing(g.schedule, 1e-9).holds);
    // Corollary 5.2: m <= t0 / c.
    EXPECT_LE(g.schedule.size(), cor52_max_periods(g.chosen_t0, c) + 1);
  } else {
    EXPECT_TRUE(check_convex_growth(g.schedule, c, 1e-6).holds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuidelineStructure,
    ::testing::Values(StructCase{"uniform:L=480", 4.0, true},
                      StructCase{"uniform:L=120", 1.0, true},
                      StructCase{"polyrisk:d=2,L=400", 2.0, true},
                      StructCase{"polyrisk:d=6,L=400", 2.0, true},
                      StructCase{"geomrisk:L=30", 1.0, true},
                      StructCase{"geomlife:a=1.02", 1.0, false},
                      StructCase{"geomlife:a=1.15", 2.0, false}));

}  // namespace
}  // namespace cs
