// SolutionAtlas: the interpolating cache tier must honor its advertised
// error bound on *off-lattice* overheads — the whole contract is that a
// served answer's expected work is within err_bound of a direct guideline
// solve, for every spec family, at overheads the atlas never solved exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/guideline.hpp"
#include "engine/atlas.hpp"
#include "engine/engine.hpp"
#include "lifefn/factory.hpp"
#include "numerics/rng.hpp"

namespace {

using cs::GuidelineOptions;
using cs::GuidelineResult;
using cs::GuidelineScheduler;
using cs::LifeFunction;
using cs::make_life_function;
using cs::engine::AtlasOptions;
using cs::engine::SolutionAtlas;

AtlasOptions enabled_options() {
  AtlasOptions opt;
  opt.enabled = true;
  return opt;
}

/// One representative spec per factory family, with an overhead range that
/// keeps c comfortably inside the function's effective lifespan.
struct FamilyCase {
  const char* spec;
  double c_lo;
  double c_hi;
};

const std::vector<FamilyCase>& family_cases() {
  static const std::vector<FamilyCase> kCases = {
      {"uniform:L=1000", 2.0, 8.0},
      {"polyrisk:d=3,L=1000", 2.0, 8.0},
      {"geomlife:half=100", 2.0, 8.0},
      {"geomrisk:L=40", 1.5, 4.0},
      {"weibull:k=1.5,scale=500", 2.0, 8.0},
      {"pareto:d=2", 2.0, 8.0},
      {"lognormal:mu=3,sigma=1", 1.5, 4.0},
      {"pwl:0:1;50:0.4;100:0", 1.5, 4.0},
      {"empirical:0:1;10:0.7;40:0", 1.5, 4.0},
  };
  return kCases;
}

}  // namespace

TEST(SolutionAtlas, DisabledAtlasNeverServes) {
  AtlasOptions opt;  // enabled = false
  SolutionAtlas atlas(opt, GuidelineOptions{});
  const auto p = make_life_function("uniform:L=1000");
  EXPECT_FALSE(atlas.lookup(p->spec(), *p, 4.0).has_value());
  EXPECT_EQ(atlas.cells_built(), 0u);
  EXPECT_EQ(atlas.served(), 0u);
}

TEST(SolutionAtlas, RejectsNonPositiveOrNonFiniteOverheads) {
  SolutionAtlas atlas(enabled_options(), GuidelineOptions{});
  const auto p = make_life_function("uniform:L=1000");
  EXPECT_FALSE(atlas.lookup(p->spec(), *p, 0.0).has_value());
  EXPECT_FALSE(atlas.lookup(p->spec(), *p, -3.0).has_value());
  EXPECT_FALSE(
      atlas.lookup(p->spec(), *p,
                   std::numeric_limits<double>::infinity()).has_value());
}

TEST(SolutionAtlas, ReusesCellsAcrossNearbyOverheads) {
  SolutionAtlas atlas(enabled_options(), GuidelineOptions{});
  const auto p = make_life_function("uniform:L=1000");
  // Both overheads land in the same lattice cell (ratio 2^(1/4) ≈ 1.19).
  ASSERT_TRUE(atlas.lookup(p->spec(), *p, 4.05).has_value());
  ASSERT_TRUE(atlas.lookup(p->spec(), *p, 4.20).has_value());
  EXPECT_EQ(atlas.cells_built(), 1u);
  EXPECT_EQ(atlas.served(), 2u);
}

TEST(SolutionAtlas, HonorsCellCapPerFamily) {
  AtlasOptions opt = enabled_options();
  opt.max_cells_per_family = 1;
  SolutionAtlas atlas(opt, GuidelineOptions{});
  const auto p = make_life_function("uniform:L=1000");
  ASSERT_TRUE(atlas.lookup(p->spec(), *p, 4.0).has_value());
  // A far-away overhead needs a second cell; the cap sends it cold instead.
  EXPECT_FALSE(atlas.lookup(p->spec(), *p, 16.0).has_value());
  EXPECT_EQ(atlas.cells_built(), 1u);
}

// The headline contract: across every spec family, at randomized overheads
// that do not sit on lattice corners, a served answer's expected work is
// within the cell's advertised bound of a direct guideline solve.
TEST(SolutionAtlas, AdvertisedBoundHoldsOffLatticeAcrossAllFamilies) {
  constexpr int kSamplesPerFamily = 8;
  cs::num::RandomStream rng(20260809);
  std::size_t served_total = 0;
  for (const FamilyCase& fc : family_cases()) {
    SCOPED_TRACE(fc.spec);
    const auto p = make_life_function(fc.spec);
    SolutionAtlas atlas(enabled_options(), GuidelineOptions{});
    for (int s = 0; s < kSamplesPerFamily; ++s) {
      const double c = rng.uniform(fc.c_lo, fc.c_hi);
      const auto ans = atlas.lookup(p->spec(), *p, c);
      if (!ans.has_value()) continue;  // cell refused: cold fallback, fine
      ++served_total;
      SCOPED_TRACE("c=" + std::to_string(c));
      EXPECT_GT(ans->err_bound, 0.0);
      EXPECT_LE(ans->err_bound, atlas.options().max_rel_err);
      const GuidelineResult direct =
          GuidelineScheduler(*p, c, GuidelineOptions{}).run();
      const double rel = std::abs(direct.expected - ans->result.expected) /
                         std::max(std::abs(direct.expected), 1e-300);
      EXPECT_LE(rel, ans->err_bound);
      // The served schedule is a genuine expansion: exact E, valid t0.
      EXPECT_GT(ans->result.chosen_t0, c);
      EXPECT_FALSE(ans->result.schedule.periods().empty());
    }
  }
  // The sweep must actually exercise the serving path, not refuse its way
  // to a vacuous pass.
  EXPECT_GE(served_total, family_cases().size() * kSamplesPerFamily / 2);
}

// Engine integration: provenance reporting through SolveInfo, and the
// served result staying within the bound it carries.
TEST(SolutionAtlas, EngineReportsAtlasTierAndBound) {
  cs::engine::EngineOptions opt;
  opt.cache_capacity = 1;  // keep the LRU out of the way
  opt.cache_shards = 1;
  opt.atlas.enabled = true;
  cs::engine::Engine engine(opt);

  cs::engine::SolveRequest req;
  req.life = "uniform:L=1000";
  req.c = 4.3;

  cs::engine::SolveInfo info;
  const auto result = engine.solve(req, &info);
  ASSERT_TRUE(result.ok()) << result.error().describe();
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(info.tier, cs::engine::SolveTier::Atlas);
  EXPECT_GT(info.atlas_err, 0.0);
  EXPECT_TRUE(result.value()->from_atlas);

  const auto p = make_life_function(req.life);
  const GuidelineResult direct =
      GuidelineScheduler(*p, req.c, GuidelineOptions{}).run();
  const double rel =
      std::abs(direct.expected - result.value()->expected) /
      std::max(std::abs(direct.expected), 1e-300);
  EXPECT_LE(rel, info.atlas_err);
  EXPECT_EQ(engine.stats().atlas, 1u);
}

TEST(SolutionAtlas, EngineWithAtlasDisabledStaysCold) {
  cs::engine::EngineOptions opt;
  opt.cache_capacity = 1;
  opt.cache_shards = 1;
  cs::engine::Engine engine(opt);

  cs::engine::SolveRequest req;
  req.life = "uniform:L=1000";
  req.c = 4.3;
  cs::engine::SolveInfo info;
  const auto result = engine.solve(req, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(info.tier, cs::engine::SolveTier::Cold);
  EXPECT_FALSE(result.value()->from_atlas);
  EXPECT_EQ(engine.stats().atlas, 0u);
}

TEST(SolutionAtlas, QuantizedRequestsBypassTheAtlas) {
  cs::engine::EngineOptions opt;
  opt.cache_capacity = 1;
  opt.cache_shards = 1;
  opt.atlas.enabled = true;
  cs::engine::Engine engine(opt);

  cs::engine::SolveRequest req;
  req.life = "uniform:L=1000";
  req.c = 4.3;
  req.quantize = 2.0;
  cs::engine::SolveInfo info;
  const auto result = engine.solve(req, &info);
  ASSERT_TRUE(result.ok());
  // Quantized schedules are exact-grid artifacts; interpolation would break
  // their grid alignment, so they always solve cold.
  EXPECT_EQ(info.tier, cs::engine::SolveTier::Cold);
  EXPECT_FALSE(result.value()->from_atlas);
}
