// Renewal-reward steady state, cross-checked against the farm DES.
#include <cmath>

#include <gtest/gtest.h>

#include "core/guideline.hpp"
#include "core/steady_state.hpp"
#include "lifefn/families.hpp"
#include "sim/farm.hpp"

namespace cs {
namespace {

TEST(SteadyState, HandComputedUniform) {
  const UniformRisk p(10.0);
  const Schedule s({4.0, 3.0});
  const double c = 1.0;
  // E(S;p) = 3*0.6 + 2*0.3 = 2.4; E[R] = 5; gap = 5 -> rate = 0.24.
  const auto ss = steady_state(s, p, c, 5.0);
  EXPECT_NEAR(ss.work_per_episode, 2.4, 1e-12);
  EXPECT_NEAR(ss.mean_episode, 5.0, 1e-9);
  EXPECT_NEAR(ss.work_rate, 0.24, 1e-9);
  EXPECT_NEAR(ss.utilization, 0.48, 1e-9);
}

TEST(SteadyState, ZeroGapMaximizesRate) {
  const UniformRisk p(100.0);
  const auto g = GuidelineScheduler(p, 2.0).run();
  const auto busy = steady_state(g.schedule, p, 2.0, 50.0);
  const auto free = steady_state(g.schedule, p, 2.0, 0.0);
  EXPECT_GT(free.work_rate, busy.work_rate);
  EXPECT_DOUBLE_EQ(free.utilization, busy.utilization);
}

TEST(SteadyState, MaximizingPerEpisodeMaximizesRate) {
  // The renewal identity: the episode denominator is schedule-independent,
  // so the E(S;p)-optimal schedule is also rate-optimal.
  const UniformRisk p(240.0);
  const double c = 2.0;
  const auto good = GuidelineScheduler(p, c).run().schedule;
  const Schedule bad = Schedule::equal_periods(120.0, 2);
  EXPECT_GT(steady_state(good, p, c, 30.0).work_rate,
            steady_state(bad, p, c, 30.0).work_rate);
}

TEST(SteadyState, ValidatesArguments) {
  const UniformRisk p(10.0);
  EXPECT_THROW((void)steady_state(Schedule({1.0}), p, 0.5, -1.0),
               std::invalid_argument);
}

TEST(FluidCompletionTime, ScalesInverselyWithStations) {
  const UniformRisk p(240.0);
  const auto g = GuidelineScheduler(p, 2.0).run();
  const auto ss = steady_state(g.schedule, p, 2.0, 60.0);
  const double t1 = fluid_completion_time(ss, 10000.0, 1);
  const double t4 = fluid_completion_time(ss, 10000.0, 4);
  EXPECT_NEAR(t1 / 4.0, t4, 1e-9);
  EXPECT_THROW((void)fluid_completion_time(ss, 100.0, 0), std::invalid_argument);
}

TEST(FluidCompletionTime, PredictsFarmMakespan) {
  // The DES farm with many tasks should land near the fluid prediction
  // (within ~25%: the fluid model ignores end-game and bag-contention
  // effects).
  const UniformRisk life(240.0);
  const double c = 2.0;
  const double gap = 60.0;
  const std::size_t n = 8;
  const std::size_t tasks = 20000;

  const auto g = GuidelineScheduler(life, c).run();
  const auto ss = steady_state(g.schedule, life, c, gap);
  const double predicted =
      fluid_completion_time(ss, static_cast<double>(tasks), n);

  auto stations = sim::homogeneous_farm(n, life, c, gap);
  const auto policy = sim::make_guideline_policy();
  sim::FarmOptions opt;
  opt.task_count = tasks;
  opt.profile = {.kind = sim::TaskProfile::Kind::Fixed, .mean = 1.0};
  opt.seed = 77;
  const auto farm = sim::run_farm(stations, *policy, opt);
  ASSERT_TRUE(farm.completed);
  EXPECT_NEAR(farm.makespan, predicted, 0.25 * predicted)
      << "fluid " << predicted << " vs DES " << farm.makespan;
}

}  // namespace
}  // namespace cs
