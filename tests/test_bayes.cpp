// Bayesian life-function learning and its surprising tie-in with the
// paper's Corollary 3.2 family.
#include <cmath>

#include <gtest/gtest.h>

#include "core/admissibility.hpp"
#include "core/expected_work.hpp"
#include "core/greedy.hpp"
#include "core/guideline.hpp"
#include "numerics/rng.hpp"
#include "trace/bayes.hpp"

namespace cs::trace {
namespace {

TEST(GammaExponential, ConjugateUpdates) {
  GammaExponentialModel m(2.0, 50.0);
  m.observe(10.0);
  m.observe(30.0);
  EXPECT_DOUBLE_EQ(m.alpha(), 4.0);
  EXPECT_DOUBLE_EQ(m.beta(), 90.0);
  EXPECT_EQ(m.events(), 2u);
  m.observe_censored(25.0);
  EXPECT_DOUBLE_EQ(m.alpha(), 4.0);  // no event
  EXPECT_DOUBLE_EQ(m.beta(), 115.0);
}

TEST(GammaExponential, PosteriorMoments) {
  GammaExponentialModel m(3.0, 60.0);
  EXPECT_DOUBLE_EQ(m.mean_rate(), 0.05);
  EXPECT_DOUBLE_EQ(m.mean_idle(), 30.0);
  EXPECT_THROW((void)GammaExponentialModel(0.5, 10.0).mean_idle(),
               std::logic_error);
}

TEST(GammaExponential, ValidatesInputs) {
  EXPECT_THROW(GammaExponentialModel(0.0, 1.0), std::invalid_argument);
  GammaExponentialModel m;
  EXPECT_THROW(m.observe(0.0), std::invalid_argument);
  EXPECT_THROW(m.observe_censored(-1.0), std::invalid_argument);
}

TEST(GammaExponential, ConvergesToTruth) {
  const double true_mean = 80.0;
  num::RandomStream rng(60);
  GammaExponentialModel m;
  for (int i = 0; i < 20000; ++i) m.observe(rng.exponential(1.0 / true_mean));
  EXPECT_NEAR(m.mean_idle(), true_mean, 2.0);
}

TEST(GammaExponential, PredictiveSurvivalFormula) {
  GammaExponentialModel m(3.0, 60.0);
  const auto pred = m.predictive_life_function();
  for (double t : {0.0, 10.0, 50.0, 200.0}) {
    EXPECT_NEAR(pred->survival(t), std::pow(60.0 / (60.0 + t), 3.0), 1e-12)
        << t;
  }
}

TEST(GammaExponential, PredictiveHeavierThanPlugin) {
  // Parameter uncertainty fattens the tail: predictive survival dominates
  // the plug-in exponential at large t.
  GammaExponentialModel m(4.0, 200.0);
  const auto pred = m.predictive_life_function();
  const auto plug = m.plugin_life_function();
  EXPECT_GT(pred->survival(500.0), plug->survival(500.0));
  // Both agree near 0.
  EXPECT_NEAR(pred->survival(1.0), plug->survival(1.0), 1e-3);
}

TEST(GammaExponential, PredictiveAdmitsNoOptimalSchedule) {
  // The honest posterior-predictive belief is the paper's Cor 3.2 family:
  // no optimal schedule exists against it, although every candidate truth
  // (each exponential) admits one.
  GammaExponentialModel m(3.0, 120.0);
  const auto pred = m.predictive_life_function();
  const auto verdict = admits_optimal_schedule(*pred, 2.0);
  EXPECT_FALSE(verdict.exists);
  const auto plug_verdict = admits_optimal_schedule(*m.plugin_life_function(),
                                                    2.0);
  EXPECT_TRUE(plug_verdict.exists);
}

TEST(GammaExponential, PluginSchedulingNearOracleWithData) {
  // With plenty of data, scheduling from the plug-in law loses little
  // against the oracle under the true exponential.
  const double true_mean = 90.0;
  const double c = 2.0;
  num::RandomStream rng(61);
  GammaExponentialModel m;
  for (int i = 0; i < 3000; ++i) m.observe(rng.exponential(1.0 / true_mean));
  const GeometricLifespan truth(std::exp(1.0 / true_mean));
  const auto oracle = GuidelineScheduler(truth, c).run();
  const auto plugin = GuidelineScheduler(*m.plugin_life_function(), c).run();
  EXPECT_GT(expected_work(plugin.schedule, truth, c),
            0.99 * oracle.expected);
}

TEST(GammaExponential, PredictiveSchedulingIsRobustEarly) {
  // With only a handful of observations, the greedy schedule against the
  // predictive law still earns a solid fraction of the oracle — the
  // heavy-tailed belief hedges against overcommitment.
  const double true_mean = 90.0;
  const double c = 2.0;
  num::RandomStream rng(62);
  GammaExponentialModel m(1.0, 30.0);  // weak, wrong-ish prior
  for (int i = 0; i < 10; ++i) m.observe(rng.exponential(1.0 / true_mean));
  const GeometricLifespan truth(std::exp(1.0 / true_mean));
  const auto oracle = GuidelineScheduler(truth, c).run();
  const auto pred = m.predictive_life_function();
  const auto hedged = greedy_schedule(*pred, c);
  EXPECT_GT(expected_work(hedged.schedule, truth, c),
            0.6 * oracle.expected);
}

}  // namespace
}  // namespace cs::trace
