#include "core/schedule.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(PositiveSub, Definition) {
  EXPECT_DOUBLE_EQ(positive_sub(5.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(positive_sub(3.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(positive_sub(4.0, 4.0), 0.0);
}

TEST(Schedule, ConstructionAndAccess) {
  const Schedule s({3.0, 2.0, 1.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
  EXPECT_DOUBLE_EQ(s.total_duration(), 6.0);
}

TEST(Schedule, EmptySchedule) {
  const Schedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.total_duration(), 0.0);
  EXPECT_TRUE(s.end_times().empty());
}

TEST(Schedule, RejectsNonpositivePeriods) {
  EXPECT_THROW(Schedule({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Schedule({-1.0}), std::invalid_argument);
  EXPECT_THROW(Schedule({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  Schedule s({1.0});
  EXPECT_THROW(s.append(0.0), std::invalid_argument);
}

TEST(Schedule, EndTimesArePrefixSums) {
  const Schedule s({4.0, 3.0, 2.0});
  const auto ends = s.end_times();
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_DOUBLE_EQ(ends[0], 4.0);
  EXPECT_DOUBLE_EQ(ends[1], 7.0);
  EXPECT_DOUBLE_EQ(ends[2], 9.0);
  EXPECT_DOUBLE_EQ(s.end_time(1), 7.0);
  EXPECT_THROW((void)s.end_time(3), std::out_of_range);
}

TEST(Schedule, EqualPeriodsFactory) {
  const Schedule s = Schedule::equal_periods(2.5, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.total_duration(), 10.0);
  EXPECT_THROW(Schedule::equal_periods(0.0, 3), std::invalid_argument);
}

TEST(Schedule, ArithmeticFactoryStopsAtZero) {
  const Schedule s = Schedule::arithmetic(10.0, 3.0, 100);
  // 10, 7, 4, 1 — next would be -2.
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[3], 1.0);
}

TEST(Schedule, ArithmeticFactoryHonorsCap) {
  const Schedule s = Schedule::arithmetic(10.0, 0.0, 5);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Schedule, ShiftedChangesOnePeriod) {
  const Schedule s({5.0, 4.0, 3.0});
  const Schedule t = s.shifted(1, -0.5);
  EXPECT_DOUBLE_EQ(t[0], 5.0);
  EXPECT_DOUBLE_EQ(t[1], 3.5);
  EXPECT_DOUBLE_EQ(t[2], 3.0);
  // Shift moves all later end times.
  EXPECT_DOUBLE_EQ(t.end_time(2), 11.5);
  EXPECT_THROW(s.shifted(3, 1.0), std::out_of_range);
  EXPECT_THROW(s.shifted(0, -5.0), std::invalid_argument);
}

TEST(Schedule, PerturbedPreservesLaterEndTimes) {
  const Schedule s({5.0, 4.0, 3.0});
  const Schedule t = s.perturbed(0, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 6.0);
  EXPECT_DOUBLE_EQ(t[1], 3.0);
  EXPECT_DOUBLE_EQ(t.end_time(1), s.end_time(1));
  EXPECT_DOUBLE_EQ(t.end_time(2), s.end_time(2));
  EXPECT_THROW(s.perturbed(2, 0.1), std::out_of_range);
  EXPECT_THROW(s.perturbed(0, 4.0), std::invalid_argument);  // t1 -> 0
}

TEST(Schedule, PrefixTruncates) {
  const Schedule s({5.0, 4.0, 3.0});
  const Schedule head = s.prefix(2);
  EXPECT_EQ(head.size(), 2u);
  EXPECT_DOUBLE_EQ(head.total_duration(), 9.0);
  EXPECT_EQ(s.prefix(10), s);
}

TEST(Schedule, ToStringTruncatesLongSchedules) {
  const Schedule s = Schedule::equal_periods(1.0, 20);
  const std::string str = s.to_string(3);
  EXPECT_NE(str.find("(20 periods)"), std::string::npos);
}

TEST(Schedule, Equality) {
  EXPECT_EQ(Schedule({1.0, 2.0}), Schedule({1.0, 2.0}));
  EXPECT_NE(Schedule({1.0, 2.0}), Schedule({1.0, 2.5}));
}

}  // namespace
}  // namespace cs
