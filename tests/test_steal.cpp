// cs::steal test suite.
//
// Two kinds of cases live here:
//  - StealHammer.*: multi-threaded stress whose job is to give TSan real
//    interleavings over the Chase-Lev deque, the termination ring, and the
//    full runtime under concurrent reclaim kills (ci.sh's steal stage runs
//    exactly this filter under -fsanitize=thread).  Assertions are loose
//    interleaving-independent invariants: no task lost, none duplicated.
//  - StealRuntime.* / WsDeque.* / etc.: functional semantics, including
//    the acceptance check that realized work per episode on the DP
//    reference schedule matches the analytic E(S;p) within 5%.
//
// Iteration counts are sized for a small CI box; CS_STRESS_SCALE multiplies
// them for longer soaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/expected_work.hpp"
#include "lifefn/families.hpp"
#include "numerics/rng.hpp"
#include "sim/policy.hpp"
#include "sim/task_bag.hpp"
#include "steal/deque.hpp"
#include "steal/farm_policy.hpp"
#include "steal/owner_activity.hpp"
#include "steal/steal_runtime.hpp"
#include "steal/termination.hpp"
#include "steal/victim_order.hpp"
#include "steal/virtual_clock.hpp"

namespace {

using cs::steal::RunInput;
using cs::steal::RunResult;
using cs::steal::StealOutcome;
using cs::steal::StealStatus;
using cs::steal::TerminationRing;
using cs::steal::WsDeque;

std::size_t stress_scale() {
  if (const char* env = std::getenv("CS_STRESS_SCALE")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::vector<double> uniform_tasks(std::size_t count, double mean,
                                  std::uint64_t seed) {
  cs::num::RandomStream rng(seed);
  cs::sim::TaskProfile profile;
  profile.kind = cs::sim::TaskProfile::Kind::Uniform;
  profile.mean = mean;
  profile.spread = 0.5;
  return cs::sim::generate_task_durations(count, profile, rng);
}

// ------------------------------------------------------------------ deque

TEST(WsDeque, OwnerLifoThiefFifo) {
  WsDeque<std::uint64_t> dq;
  for (std::uint64_t i = 0; i < 4; ++i) dq.push_bottom(i);
  EXPECT_EQ(dq.size_estimate(), 4u);

  // Thief takes from the top: oldest first.
  const StealOutcome<std::uint64_t> s = dq.steal_top();
  ASSERT_EQ(s.status, StealStatus::kStolen);
  EXPECT_EQ(s.value, 0u);

  // Owner pops from the bottom: newest first.
  const auto p = dq.pop_bottom();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 3u);

  EXPECT_EQ(*dq.pop_bottom(), 2u);
  EXPECT_EQ(*dq.pop_bottom(), 1u);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_EQ(dq.steal_top().status, StealStatus::kEmpty);
}

TEST(WsDeque, GrowthPreservesEveryElement) {
  WsDeque<std::uint64_t> dq(8);  // grows several times below
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) dq.push_bottom(i);
  std::vector<bool> seen(n, false);
  // Drain half from the top, half from the bottom.
  for (std::uint64_t i = 0; i < n / 2; ++i) {
    const auto out = dq.steal_top();
    ASSERT_EQ(out.status, StealStatus::kStolen);
    seen[out.value] = true;
  }
  while (auto t = dq.pop_bottom()) seen[*t] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// The ISSUE's hammer: N thieves vs 1 owner on one deque, > 1e6 combined
// operations, every task claimed exactly once.
TEST(StealHammer, OwnerVsThievesNoLostNoDup) {
  const std::uint64_t total = 250000 * stress_scale();
  WsDeque<std::uint64_t> dq;
  std::vector<std::atomic<std::uint8_t>> claims(total);
  std::atomic<std::uint64_t> nclaimed{0};
  std::atomic<std::uint64_t> dup_claims{0};
  auto claim = [&](std::uint64_t id) {
    if (claims[id].fetch_add(1) != 0) dup_claims.fetch_add(1);
    nclaimed.fetch_add(1);
  };

  std::thread owner([&] {
    for (std::uint64_t id = 0; id < total; ++id) {
      dq.push_bottom(id);
      // Pop every fourth push: exercises the owner-vs-thief CAS race on
      // the last element far more often than pure producer behavior would.
      if ((id & 3u) == 0) {
        if (auto t = dq.pop_bottom()) claim(*t);
      }
    }
    while (nclaimed.load() < total) {
      if (auto t = dq.pop_bottom())
        claim(*t);
      else
        std::this_thread::yield();
    }
  });
  std::vector<std::thread> thieves;
  for (int i = 0; i < 3; ++i) {
    thieves.emplace_back([&] {
      while (nclaimed.load() < total) {
        const auto out = dq.steal_top();
        if (out.status == StealStatus::kStolen)
          claim(out.value);
        else
          std::this_thread::yield();
      }
    });
  }
  owner.join();
  for (auto& t : thieves) t.join();

  EXPECT_EQ(nclaimed.load(), total);
  EXPECT_EQ(dup_claims.load(), 0u);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  for (std::uint64_t id = 0; id < total; ++id)
    ASSERT_EQ(claims[id].load(), 1u) << "task " << id;
}

// ----------------------------------------------------------- victim order

TEST(VictimOrder, SameTierFirstThenEscalate) {
  const std::size_t workers = 8, tier = 4;
  const auto order = cs::steal::victim_order(1, workers, tier, 42);
  ASSERT_EQ(order.size(), workers - 1);
  // No self, no duplicates.
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(),
            workers - 1);
  EXPECT_TRUE(std::find(order.begin(), order.end(), 1u) == order.end());
  // Distances never decrease along the list.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(cs::steal::tier_distance(1, order[i - 1], tier),
              cs::steal::tier_distance(1, order[i], tier));
  // The first three victims are the same-tier peers {0, 2, 3}.
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.begin() + 3),
            (std::set<std::size_t>{0, 2, 3}));
}

TEST(VictimOrder, ShuffleIsPerThiefDeterministic) {
  const auto a = cs::steal::victim_order(2, 16, 4, 7);
  const auto b = cs::steal::victim_order(2, 16, 4, 7);
  EXPECT_EQ(a, b);  // same seed, same thief: reproducible
  // Different thieves in the same tier probe in different orders (with 12
  // same-distance victims the chance of an accidental match is ~1/12!).
  const auto c = cs::steal::victim_order(3, 16, 4, 7);
  EXPECT_NE(std::vector<std::size_t>(a.begin(), a.begin() + 2),
            std::vector<std::size_t>(c.begin(), c.begin() + 2));
}

// ------------------------------------------------------- termination ring

TEST(TerminationRing, DetectsQuiescenceSingleThreaded) {
  TerminationRing ring(3);
  bool done = false;
  // Every worker is passive; the token needs one blackened lap (initial
  // state is conservative) plus one white lap.
  for (int lap = 0; lap < 20 && !done; ++lap)
    for (std::size_t w = 0; w < 3; ++w)
      if (ring.poll(w)) done = true;
  EXPECT_TRUE(done);
  EXPECT_TRUE(ring.terminated());
  EXPECT_GE(ring.rounds(), 1u);
}

TEST(TerminationRing, TaintDefersDetection) {
  TerminationRing ring(2);
  // Worker 1 keeps getting tainted: termination must not fire.
  for (int lap = 0; lap < 10; ++lap) {
    ring.taint(1);
    EXPECT_FALSE(ring.poll(0));
    EXPECT_FALSE(ring.poll(1));
  }
  // Taints stop: now it converges.
  bool done = false;
  for (int lap = 0; lap < 10 && !done; ++lap)
    done = ring.poll(0) || ring.poll(1);
  EXPECT_TRUE(done);
}

// Late wakeup: a worker that is still active (holding work) must block
// detection until it finally goes passive — even if every other worker
// spends that whole time polling.
TEST(StealHammer, TerminationRingLateWakeup) {
  const std::size_t n = 4;
  TerminationRing ring(n);
  std::atomic<bool> late_passive{false};
  std::atomic<bool> premature{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> pollers;
  for (std::size_t w = 0; w < n - 1; ++w) {
    pollers.emplace_back([&, w] {
      while (!done.load()) {
        if (ring.poll(w)) {
          if (!late_passive.load()) premature.store(true);
          done.store(true);
        }
        std::this_thread::yield();
      }
    });
  }
  std::thread late([&] {
    // Simulate holding work: stay active and keep tainting for a while.
    for (int i = 0; i < 200; ++i) {
      ring.set_active(n - 1);
      ring.taint(n - 1);
      std::this_thread::yield();
    }
    late_passive.store(true);
    while (!done.load()) {
      if (ring.poll(n - 1)) done.store(true);
      std::this_thread::yield();
    }
  });
  for (auto& t : pollers) t.join();
  late.join();
  EXPECT_TRUE(ring.terminated());
  EXPECT_FALSE(premature.load());
}

// ---------------------------------------------------------- owner activity

TEST(OwnerActivity, TraceReplayCycles) {
  cs::trace::OwnerTrace trace;
  trace.append(5.0, false);
  trace.append(10.0, true);
  trace.append(3.0, false);
  trace.append(7.0, true);
  const auto act = cs::steal::make_trace_activity(trace);
  auto e1 = act->next();
  EXPECT_DOUBLE_EQ(e1.busy_gap, 5.0);
  EXPECT_DOUBLE_EQ(e1.reclaim, 10.0);
  auto e2 = act->next();
  EXPECT_DOUBLE_EQ(e2.busy_gap, 3.0);
  EXPECT_DOUBLE_EQ(e2.reclaim, 7.0);
  auto e3 = act->next();  // cycles back to the start
  EXPECT_DOUBLE_EQ(e3.busy_gap, 5.0);
  EXPECT_DOUBLE_EQ(e3.reclaim, 10.0);
}

TEST(OwnerActivity, AllBusyTraceDoesNotSpin) {
  cs::trace::OwnerTrace trace;
  trace.append(5.0, false);
  const auto act = cs::steal::make_trace_activity(trace);
  const auto ep = act->next();  // must return, with a fallback reclaim
  EXPECT_GT(ep.reclaim, 0.0);
}

TEST(VirtualClock, AdvanceToReportsSkip) {
  cs::steal::VirtualClock clk;
  clk.advance(3.0);
  EXPECT_DOUBLE_EQ(clk.advance_to(5.0), 2.0);
  EXPECT_DOUBLE_EQ(clk.advance_to(4.0), 0.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(clk.now(), 5.0);
}

// ---------------------------------------------------------------- runtime

RunInput small_drain_input(const cs::LifeFunction& life,
                           std::vector<double> tasks) {
  RunInput in;
  in.life = &life;
  in.tasks = std::move(tasks);
  in.opt.workers = 4;
  in.opt.tier_size = 2;
  in.opt.c = 1.0;
  in.opt.mean_busy_gap = 10.0;
  in.opt.steal_batch = 4;
  in.opt.seed = 31337;
  return in;
}

TEST(StealRuntime, DrainsBagAndConservesWork) {
  cs::UniformRisk life(60.0);
  const auto tasks = uniform_tasks(2000, 0.5, 11);
  const double total_work =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  RunInput in = small_drain_input(life, tasks);
  in.opt.steal_latency = 0.5;

  const RunResult r = cs::steal::make_steal_runtime()->run(in);
  EXPECT_EQ(r.runtime, "steal");
  EXPECT_TRUE(r.drained);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.tasks_banked, 2000u);
  EXPECT_NEAR(r.work_banked, total_work, 1e-6);
  EXPECT_GE(r.ring_rounds, 1u);  // the ring, not the counter, ended the run
  EXPECT_GT(r.completion_vtime, 0.0);
  EXPECT_GT(r.analytic_expected, 0.0);
  ASSERT_EQ(r.workers.size(), 4u);
  std::uint64_t episodes = 0;
  for (const auto& w : r.workers) episodes += w.episodes;
  EXPECT_GT(episodes, 0u);
}

// Steal-during-reclaim: short reclaims force draconian kills while other
// workers are stealing; every task must still be banked exactly once.
TEST(StealHammer, ReclaimKillsRedistributeWithoutLoss) {
  cs::UniformRisk life(20.0);  // short lifespans: frequent kills
  const std::size_t count = 1500 * stress_scale();
  const auto tasks = uniform_tasks(count, 0.5, 12);
  const double total_work =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  RunInput in = small_drain_input(life, tasks);
  in.opt.mean_busy_gap = 5.0;

  const RunResult r = cs::steal::make_steal_runtime()->run(in);
  EXPECT_TRUE(r.drained);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.tasks_banked, count);
  EXPECT_NEAR(r.work_banked, total_work, 1e-6);
  std::uint64_t kills = 0, redistributed = 0;
  for (const auto& w : r.workers) {
    kills += w.interrupted_periods;
    redistributed += w.tasks_redistributed;
  }
  EXPECT_GT(kills, 0u);
  EXPECT_GT(redistributed, 0u);
}

TEST(WorkSharing, DrainsBagAndConservesWork) {
  cs::UniformRisk life(60.0);
  const auto tasks = uniform_tasks(2000, 0.5, 13);
  const double total_work =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  RunInput in = small_drain_input(life, tasks);
  in.opt.steal_latency = 0.5;

  const RunResult r = cs::steal::make_work_sharing()->run(in);
  EXPECT_EQ(r.runtime, "share");
  EXPECT_TRUE(r.drained);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.tasks_banked, 2000u);
  EXPECT_NEAR(r.work_banked, total_work, 1e-6);
  EXPECT_EQ(r.ring_rounds, 0u);  // sharing needs no distributed detection
}

TEST(StealRuntime, EmptyBagTerminatesImmediately) {
  cs::UniformRisk life(60.0);
  for (const char* name : {"steal", "share"}) {
    const RunResult r =
        cs::steal::make_farm_policy(name)->run(small_drain_input(life, {}));
    EXPECT_TRUE(r.drained) << name;
    EXPECT_FALSE(r.aborted) << name;
    EXPECT_EQ(r.tasks_banked, 0u) << name;
  }
}

TEST(StealRuntime, StallBrakeAbortsOnUnplaceableTask) {
  cs::UniformRisk life(60.0);
  // One task longer than every period payload: no schedule can place it.
  RunInput in = small_drain_input(life, {50.0});
  const cs::Schedule tiny({5.0, 4.0});
  in.schedule = &tiny;
  in.opt.workers = 2;
  in.opt.stall_episode_limit = 500;

  const RunResult r = cs::steal::make_steal_runtime()->run(in);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.drained);
  EXPECT_EQ(r.tasks_banked, 0u);
}

TEST(StealRuntime, ReplayTracesDriveEpisodes) {
  cs::UniformRisk life(60.0);
  cs::trace::OwnerTrace trace;
  trace.append(2.0, false);
  trace.append(12.0, true);
  RunInput in = small_drain_input(life, uniform_tasks(400, 0.4, 14));
  in.traces.push_back(trace);

  const RunResult r = cs::steal::make_steal_runtime()->run(in);
  EXPECT_TRUE(r.drained);
  // Every episode replays the same 12-time-unit gap; vtime advances in
  // (2 + 12) steps, so each worker's clock is a multiple of 14.
  for (const auto& w : r.workers) {
    if (w.episodes == 0) continue;
    const double cycles = w.vtime / 14.0;
    EXPECT_NEAR(cycles, std::round(cycles), 1e-9);
  }
}

TEST(StealRuntime, FactoryNamesAndErrors) {
  EXPECT_EQ(cs::steal::make_farm_policy("steal")->name(), "steal");
  EXPECT_EQ(cs::steal::make_farm_policy("share")->name(), "share");
  EXPECT_THROW((void)cs::steal::make_farm_policy("gossip"),
               std::invalid_argument);
  cs::UniformRisk life(60.0);
  RunInput in;  // no life
  EXPECT_THROW((void)cs::steal::make_steal_runtime()->run(in),
               std::invalid_argument);
  in.life = &life;
  in.opt.workers = 0;
  EXPECT_THROW((void)cs::steal::make_steal_runtime()->run(in),
               std::invalid_argument);
}

// Acceptance: >= 8 workers on uniform-risk owner episodes, DP-reference
// schedule — mean banked work per episode within 5% of analytic E(S;p).
TEST(StealRuntime, RealizedWorkMatchesDpAnalyticWithin5Percent) {
  cs::UniformRisk life(240.0);
  const double c = 2.0;
  const auto dp = cs::sim::make_policy("dp");
  const cs::Schedule sched = dp->make_schedule(life, c);
  const double analytic = cs::expected_work(sched, life, c);
  ASSERT_GT(analytic, 0.0);

  RunInput in;
  in.life = &life;
  in.schedule = &sched;
  in.opt.workers = 8;
  in.opt.tier_size = 4;
  in.opt.c = c;
  in.opt.mean_busy_gap = 40.0;
  in.opt.steal_latency = 0.0;
  in.opt.max_episodes = 120;
  in.opt.seed = 20260808;
  const double mean_task = 0.2;
  const double budget = 8.0 * 120.0 * analytic * 1.4;
  in.tasks = uniform_tasks(static_cast<std::size_t>(budget / mean_task),
                           mean_task, 15);

  const RunResult r = cs::steal::make_steal_runtime()->run(in);
  EXPECT_FALSE(r.aborted);
  std::uint64_t episodes = 0;
  for (const auto& w : r.workers) episodes += w.episodes;
  EXPECT_EQ(episodes, 8u * 120u);
  // Ample bag: no worker should ever have starved an episode.
  EXPECT_EQ(r.fed_episodes(), episodes);
  EXPECT_NEAR(r.analytic_expected, analytic, 1e-9);
  EXPECT_NEAR(r.realized_per_episode() / analytic, 1.0, 0.05);
}

// Steal latency must show up in the virtual completion time: the same
// drain with a pricier steal protocol cannot finish sooner.
TEST(StealRuntime, LatencyChargesShowInCompletionTime) {
  cs::UniformRisk life(60.0);
  const auto tasks = uniform_tasks(1200, 0.5, 16);
  double prev = -1.0;
  for (const double latency : {0.0, 2.0}) {
    RunInput in = small_drain_input(life, tasks);
    in.opt.steal_latency = latency;
    const RunResult r = cs::steal::make_steal_runtime()->run(in);
    EXPECT_TRUE(r.drained);
    std::uint64_t attempted = 0;
    for (const auto& w : r.workers) attempted += w.steals_attempted;
    EXPECT_GT(attempted, 0u);
    if (prev >= 0.0) {
      EXPECT_GE(r.completion_vtime, prev * 0.8);
    }
    prev = r.completion_vtime;
  }
}

}  // namespace
