#include "numerics/roots.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numerics/approx.hpp"

namespace cs::num {
namespace {

TEST(Bisect, FindsLinearRoot) {
  const auto r = bisect([](double x) { return 2.0 * x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 0.5, 1e-10);
}

TEST(Bisect, FindsTranscendentalRoot) {
  const auto r = bisect([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 0.7390851332151607, 1e-9);
}

TEST(Bisect, ExactEndpointRootLo) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.0);
}

TEST(Bisect, ExactEndpointRootHi) {
  const auto r = bisect([](double x) { return x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 1.0);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, ThrowsOnInvertedBracket) {
  EXPECT_THROW(bisect([](double x) { return x; }, 1.0, -1.0),
               std::invalid_argument);
}

TEST(Brent, FindsPolynomialRoot) {
  // x^3 - 2x - 5 has its real root at ~2.0945514815.
  const auto r = brent([](double x) { return x * x * x - 2.0 * x - 5.0; },
                       2.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 2.0945514815423265, 1e-10);
}

TEST(Brent, FasterThanBisectOnSmooth) {
  int brent_evals = 0;
  int bisect_evals = 0;
  auto f_b = [&brent_evals](double x) {
    ++brent_evals;
    return std::exp(x) - 2.0;
  };
  auto f_c = [&bisect_evals](double x) {
    ++bisect_evals;
    return std::exp(x) - 2.0;
  };
  const auto rb = brent(f_b, 0.0, 2.0, {.x_tol = 1e-13});
  const auto rc = bisect(f_c, 0.0, 2.0, {.x_tol = 1e-13});
  EXPECT_NEAR(rb.root, std::log(2.0), 1e-10);
  EXPECT_NEAR(rc.root, std::log(2.0), 1e-10);
  EXPECT_LT(brent_evals, bisect_evals);
}

TEST(Brent, HandlesSteepFunction) {
  // Survival-like: steep exponential decay crossing 0.5.
  const auto r = brent([](double x) { return std::exp(-10.0 * x) - 0.5; },
                       0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::log(2.0) / 10.0, 1e-10);
}

TEST(Brent, NearlyFlatTail) {
  // f is almost flat on the right half of the bracket: Brent must not stall.
  const auto r = brent(
      [](double x) { return std::tanh(5.0 * (x - 0.3)) + 0.1; }, 0.0, 100.0,
      {.x_tol = 1e-12});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(std::tanh(5.0 * (r.root - 0.3)), -0.1, 1e-9);
}

TEST(BracketRight, ExpandsToFindSignChange) {
  const auto b = bracket_right([](double x) { return x - 37.0; }, 0.0, 1.0,
                               1e6);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 37.0);
  EXPECT_GE(b->second, 37.0);
}

TEST(BracketRight, RespectsLimit) {
  const auto b = bracket_right([](double x) { return x - 37.0; }, 0.0, 1.0,
                               10.0);
  EXPECT_FALSE(b.has_value());
}

TEST(BracketRight, ThrowsOnNonpositiveStep) {
  EXPECT_THROW(bracket_right([](double x) { return x; }, 0.0, 0.0, 1.0),
               std::invalid_argument);
}

TEST(MonotoneRoot, FindsRoot) {
  const auto r = monotone_root([](double x) { return 1.0 - x * x; }, 0.0, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-10);
}

TEST(MonotoneRoot, NulloptWithoutCrossing) {
  EXPECT_FALSE(
      monotone_root([](double x) { return x + 1.0; }, 0.0, 5.0).has_value());
}

TEST(MonotoneRoot, EndpointRoots) {
  const auto lo = monotone_root([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(lo.has_value());
  EXPECT_DOUBLE_EQ(*lo, 0.0);
  const auto hi = monotone_root([](double x) { return x - 1.0; }, 0.0, 1.0);
  ASSERT_TRUE(hi.has_value());
  EXPECT_DOUBLE_EQ(*hi, 1.0);
}

// Property sweep: Brent solves p(t) = u for survival-style curves across a
// parameter grid (the workload the scheduler actually generates).
class SurvivalInversion : public ::testing::TestWithParam<double> {};

TEST_P(SurvivalInversion, RoundTrip) {
  const double rate = GetParam();
  auto p = [rate](double t) { return std::exp(-rate * t); };
  for (double u : {0.9, 0.5, 0.1, 0.01, 1e-6}) {
    auto f = [&](double t) { return p(t) - u; };
    const auto hi = bracket_right(f, 0.0, 1.0, 1e12);
    ASSERT_TRUE(hi.has_value()) << "rate=" << rate << " u=" << u;
    const auto r = brent(f, hi->first, hi->second, {.x_tol = 1e-13});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(p(r.root), u, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SurvivalInversion,
                         ::testing::Values(0.001, 0.01, 0.1, 1.0, 10.0));


// ----------------------------------------------------------------- approx_eq
// The comparator the float-eq lint rule routes code through; its defaults
// (rel=1e-12, abs_tol=0) must preserve exact-zero tests at the root-finder
// call sites that used to write `f == 0.0`.

TEST(ApproxEq, ExactValuesAndZeroDefault) {
  EXPECT_TRUE(approx_eq(1.5, 1.5));
  EXPECT_TRUE(approx_eq(0.0, 0.0));
  EXPECT_TRUE(approx_eq(0.0, -0.0));
  // With abs_tol = 0, comparison against zero is an *exact* zero test.
  EXPECT_FALSE(approx_eq(1e-300, 0.0));
  EXPECT_FALSE(approx_eq(std::numeric_limits<double>::denorm_min(), 0.0));
}

TEST(ApproxEq, RelativeTolerance) {
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(approx_eq(1.0, 1.0 + 1e-9));
  // Relative: scales with magnitude.
  EXPECT_TRUE(approx_eq(1e12, 1e12 + 0.1));
  EXPECT_FALSE(approx_eq(1e12, 1e12 + 10.0));
  EXPECT_TRUE(approx_eq(1.0, 1.1, /*rel=*/0.2));
}

TEST(ApproxEq, AbsoluteTolerance) {
  EXPECT_TRUE(approx_eq(1e-300, 0.0, 1e-12, /*abs_tol=*/1e-200));
  EXPECT_TRUE(approx_eq(0.5, 0.4, 0.0, /*abs_tol=*/0.2));
  EXPECT_FALSE(approx_eq(0.5, 0.1, 0.0, /*abs_tol=*/0.2));
}

TEST(ApproxEq, NonFiniteInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(approx_eq(inf, inf));     // exact-hit branch
  EXPECT_FALSE(approx_eq(inf, -inf));
  EXPECT_FALSE(approx_eq(nan, nan));
  EXPECT_FALSE(approx_eq(nan, 1.0));
}

}  // namespace
}  // namespace cs::num
