#include "numerics/minimize.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace cs::num {
namespace {

TEST(GoldenSection, Parabola) {
  const auto r = golden_section(
      [](double x) { return (x - 2.0) * (x - 2.0) + 3.0; }, 0.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
  EXPECT_NEAR(r.value, 3.0, 1e-12);
}

TEST(GoldenSection, BoundaryMinimum) {
  const auto r = golden_section([](double x) { return x; }, 1.0, 4.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(GoldenSection, ThrowsOnInvertedInterval) {
  EXPECT_THROW(golden_section([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(BrentMinimize, Parabola) {
  const auto r = brent_minimize(
      [](double x) { return (x - 2.0) * (x - 2.0) + 3.0; }, 0.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-8);
}

TEST(BrentMinimize, AsymmetricSmooth) {
  // min of x - log(x) at x = 1.
  const auto r =
      brent_minimize([](double x) { return x - std::log(x); }, 0.1, 10.0);
  EXPECT_NEAR(r.x, 1.0, 1e-7);
  EXPECT_NEAR(r.value, 1.0, 1e-12);
}

TEST(BrentMinimize, FewerEvalsThanGolden) {
  int brent_evals = 0, golden_evals = 0;
  auto fb = [&](double x) {
    ++brent_evals;
    return std::cosh(x - 1.3);
  };
  auto fg = [&](double x) {
    ++golden_evals;
    return std::cosh(x - 1.3);
  };
  EXPECT_NEAR(brent_minimize(fb, -5.0, 5.0, {.x_tol = 1e-10}).x, 1.3, 1e-7);
  EXPECT_NEAR(golden_section(fg, -5.0, 5.0, {.x_tol = 1e-10}).x, 1.3, 1e-7);
  EXPECT_LT(brent_evals, golden_evals);
}

TEST(GridThenRefine, EscapesLocalMinimum) {
  // Two wells: local at x = -1 (depth 1), global at x = 2 (depth 2).
  auto f = [](double x) {
    return -1.0 / (1.0 + (x + 1.0) * (x + 1.0)) -
           2.0 / (1.0 + 4.0 * (x - 2.0) * (x - 2.0));
  };
  // The shallow well's tail pulls the global minimum slightly right of 2.
  const auto r = grid_then_refine(f, -5.0, 5.0, {.grid_points = 101});
  EXPECT_NEAR(r.x, 2.0, 1e-2);
}

TEST(GridThenRefine, PlateauWithSpike) {
  // Flat zero with one narrow dip — a pure unimodal method would miss it.
  auto f = [](double x) {
    const double d = x - 0.7321;
    return -std::exp(-1e4 * d * d);
  };
  const auto r = grid_then_refine(f, 0.0, 1.0, {.grid_points = 257});
  EXPECT_NEAR(r.x, 0.7321, 1e-4);
  EXPECT_LT(r.value, -0.99);
}

TEST(GridThenRefineMax, MaximizesGainCurve) {
  // The greedy scheduler's per-period objective (t - c) p(t).
  const double c = 2.0;
  auto gain = [c](double t) { return (t - c) * std::exp(-t / 50.0); };
  const auto r = grid_then_refine_max(gain, c, 500.0);
  EXPECT_NEAR(r.x, c + 50.0, 1e-4);  // stationary point t = c + 1/rate
  EXPECT_NEAR(r.value, gain(c + 50.0), 1e-10);
}

TEST(GoldenSectionMax, NegatesCorrectly) {
  const auto r = golden_section_max(
      [](double x) { return -(x - 1.0) * (x - 1.0) + 7.0; }, -5.0, 5.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.value, 7.0, 1e-10);
}

// Property: for unimodal objectives, all three minimizers agree.
class UnimodalAgreement : public ::testing::TestWithParam<double> {};

TEST_P(UnimodalAgreement, AllMethodsAgree) {
  const double center = GetParam();
  auto f = [center](double x) {
    return std::pow(x - center, 4) + 0.5 * (x - center) * (x - center);
  };
  const double lo = center - 10.0, hi = center + 10.0;
  const auto g = golden_section(f, lo, hi, {.x_tol = 1e-11});
  const auto b = brent_minimize(f, lo, hi, {.x_tol = 1e-11});
  const auto gr = grid_then_refine(f, lo, hi, {.x_tol = 1e-11});
  EXPECT_NEAR(g.x, center, 1e-4);
  EXPECT_NEAR(b.x, center, 1e-4);
  EXPECT_NEAR(gr.x, center, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Centers, UnimodalAgreement,
                         ::testing::Values(-3.7, 0.0, 0.1, 5.5, 42.0));

}  // namespace
}  // namespace cs::num
