// Existence of optimal schedules (Corollary 3.2 and exp10).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/bclr.hpp"
#include "core/admissibility.hpp"
#include "lifefn/families.hpp"

namespace cs {
namespace {

TEST(Cor32, WitnessExistsForBoundedFamilies) {
  EXPECT_TRUE(cor32_witness(UniformRisk(100.0), 2.0).witness_exists);
  EXPECT_TRUE(cor32_witness(GeometricRisk(30.0), 1.0).witness_exists);
}

TEST(Cor32, WitnessExistsForGeometricLifespan) {
  const auto w = cor32_witness(GeometricLifespan(1.05), 1.0);
  EXPECT_TRUE(w.witness_exists);
  EXPECT_GT(w.witness_t, 1.0);
  EXPECT_GT(w.sup_margin, 0.0);
}

TEST(Cor32, ParetoSatisfiesLiteralCondition) {
  // The literal Cor 3.2 condition holds near t = c even for Pareto — the
  // corollary alone cannot certify existence, only rule it out when absent.
  const auto w = cor32_witness(ParetoTail(2.0), 1.0);
  EXPECT_TRUE(w.witness_exists);
  EXPECT_LT(w.witness_t, (1.0 + 2.0 * 1.0) / (2.0 - 1.0) + 1e-6);
}

TEST(StationaryPeriod, GeometricLifespanIsStationaryAtTStar) {
  const GeometricLifespan p(1.02);
  const double c = 1.0;
  const auto s = stationary_period_analysis(p, c);
  EXPECT_TRUE(s.stationary);
  EXPECT_LT(s.relative_drift, 1e-9);
  // The stationary period IS the BCLR optimal period.
  EXPECT_NEAR(s.period, bclr_geomlife_tstar(p, c), 1e-6 * s.period);
}

TEST(StationaryPeriod, ExponentialWeibullStationary) {
  const Weibull w(1.0, 90.0);
  const auto s = stationary_period_analysis(w, 1.0);
  EXPECT_TRUE(s.stationary);
}

TEST(StationaryPeriod, ParetoDrifts) {
  const auto s = stationary_period_analysis(ParetoTail(2.0), 1.0);
  EXPECT_FALSE(s.stationary);
  EXPECT_GT(s.relative_drift, 0.1);
  EXPECT_GE(s.probes.size(), 2u);
}

TEST(StationaryPeriod, IncreasingHazardWeibullDrifts) {
  const auto s = stationary_period_analysis(Weibull(1.5, 90.0), 1.0);
  EXPECT_FALSE(s.stationary);
}

TEST(StationaryPeriod, ValidatesProbes) {
  EXPECT_THROW(stationary_period_analysis(GeometricLifespan(1.1), 1.0, 1),
               std::invalid_argument);
}

TEST(AdmitsOptimal, BoundedAlwaysExists) {
  for (const LifeFunction* p :
       {static_cast<const LifeFunction*>(new UniformRisk(100.0)),
        static_cast<const LifeFunction*>(new PolynomialRisk(3, 50.0)),
        static_cast<const LifeFunction*>(new GeometricRisk(20.0))}) {
    const auto v = admits_optimal_schedule(*p, 1.0);
    EXPECT_TRUE(v.exists) << p->name();
    EXPECT_FALSE(v.stationary.has_value()) << p->name();
    delete p;
  }
}

TEST(AdmitsOptimal, GeometricLifespanExists) {
  const auto v = admits_optimal_schedule(GeometricLifespan(1.02), 1.0);
  EXPECT_TRUE(v.exists);
  ASSERT_TRUE(v.stationary.has_value());
  EXPECT_TRUE(v.stationary->stationary);
}

TEST(AdmitsOptimal, ParetoDoesNot) {
  // The paper's Corollary 3.2 example: p = (t+1)^{-d}, d > 1 admits no
  // optimal schedule.
  for (double d : {1.5, 2.0, 3.0}) {
    const auto v = admits_optimal_schedule(ParetoTail(d), 1.0);
    EXPECT_FALSE(v.exists) << "d=" << d;
  }
}

TEST(AdmitsOptimal, ReasonStringsNonEmpty) {
  EXPECT_GT(std::string(
                admits_optimal_schedule(UniformRisk(50.0), 1.0).reason)
                .size(),
            10u);
  EXPECT_GT(
      std::string(admits_optimal_schedule(ParetoTail(2.0), 1.0).reason).size(),
      10u);
}

}  // namespace
}  // namespace cs
