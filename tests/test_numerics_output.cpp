// Table rendering and CSV emission.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "numerics/csv.hpp"
#include "numerics/tabulate.hpp"

namespace cs::num {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"30", "40"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 30 "), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, TitleAppearsFirst) {
  Table t({"x"});
  const std::string out = t.render("My Title");
  EXPECT_EQ(out.rfind("My Title\n", 0), 0u);
}

TEST(Table, ColumnsAligned) {
  Table t({"col", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-cell", "2"});
  std::istringstream is(t.render());
  std::string line1, line2, line3, line4;
  std::getline(is, line1);
  std::getline(is, line2);
  std::getline(is, line3);
  std::getline(is, line4);
  EXPECT_EQ(line1.size(), line3.size());
  EXPECT_EQ(line3.size(), line4.size());
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableFormat, NumUsesScientificForExtremes) {
  EXPECT_NE(Table::num(1.5e9).find('e'), std::string::npos);
  EXPECT_NE(Table::num(2.0e-7).find('e'), std::string::npos);
  EXPECT_EQ(Table::num(12.5).find('e'), std::string::npos);
}

TEST(TableFormat, FixedAndPercent) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::percent(0.5, 1), "50.0%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "/cs_test.csv";
  {
    CsvWriter w(path, {"name", "value"});
    w.add_row({"plain", "1"});
    w.add_row({"has,comma", "2"});
    w.add_row({"has\"quote", "3"});
    EXPECT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("name,value\n"), std::string::npos);
  EXPECT_NE(all.find("\"has,comma\",2"), std::string::npos);
  EXPECT_NE(all.find("\"has\"\"quote\",3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/cs_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, QuoteHelper) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::quote("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::quote("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace cs::num
