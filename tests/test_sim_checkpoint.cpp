// The checkpoint-saves adapter (Section 1 "Remark", Coffman et al. [7]).
#include <cmath>

#include <gtest/gtest.h>

#include "core/expected_work.hpp"
#include "lifefn/families.hpp"
#include "sim/checkpoint.hpp"

namespace cs::sim {
namespace {

TEST(PlanSaves, CoversRequestedWorkExactly) {
  const GeometricLifespan failures(std::exp(1.0 / 200.0));
  const auto plan = plan_saves(failures, 5.0, 600.0);
  EXPECT_NEAR(plan.planned_work, 600.0, 1e-9);
  // Payload identity: total duration = work + saves.
  EXPECT_NEAR(plan.intervals.total_duration(),
              600.0 + 5.0 * static_cast<double>(plan.intervals.size()), 1e-9);
}

TEST(PlanSaves, SaveTimesAreEndTimes) {
  const GeometricLifespan failures(std::exp(1.0 / 100.0));
  const auto plan = plan_saves(failures, 2.0, 100.0);
  ASSERT_EQ(plan.save_times.size(), plan.intervals.size());
  const auto ends = plan.intervals.end_times();
  for (std::size_t i = 0; i < ends.size(); ++i)
    EXPECT_DOUBLE_EQ(plan.save_times[i], ends[i]);
}

TEST(PlanSaves, ExpectedProgressMatchesObjective) {
  const GeometricLifespan failures(std::exp(1.0 / 150.0));
  const auto plan = plan_saves(failures, 3.0, 200.0);
  EXPECT_NEAR(plan.expected_progress,
              expected_work(plan.intervals, failures, 3.0), 1e-9);
  EXPECT_GT(plan.expected_progress, 0.0);
  EXPECT_LT(plan.expected_progress, 200.0);
}

TEST(PlanSaves, MemorylessGivesEqualIntervals) {
  const GeometricLifespan failures(std::exp(1.0 / 200.0));
  const auto plan = plan_saves(failures, 5.0, 1000.0);
  ASSERT_GE(plan.intervals.size(), 3u);
  // All intervals but possibly the last (fitted) one are equal.
  for (std::size_t i = 1; i + 1 < plan.intervals.size(); ++i)
    EXPECT_NEAR(plan.intervals[i], plan.intervals[0],
                1e-6 * plan.intervals[0]);
}

TEST(PlanSaves, ShortWorkSingleInterval) {
  const GeometricLifespan failures(std::exp(1.0 / 200.0));
  const auto plan = plan_saves(failures, 5.0, 3.0);
  ASSERT_EQ(plan.intervals.size(), 1u);
  EXPECT_NEAR(plan.intervals[0], 8.0, 1e-9);  // 3 work + 5 save
}

TEST(PlanSaves, ValidatesArguments) {
  const GeometricLifespan failures(1.01);
  EXPECT_THROW(plan_saves(failures, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(plan_saves(failures, 1.0, 0.0), std::invalid_argument);
}

TEST(ProgressAtFault, StepsAtSaveTimes) {
  const GeometricLifespan failures(std::exp(1.0 / 100.0));
  const double s = 2.0;
  const auto plan = plan_saves(failures, s, 50.0);
  ASSERT_GE(plan.intervals.size(), 2u);
  const double first_end = plan.save_times[0];
  // Fault before the first save completes: nothing committed.
  EXPECT_DOUBLE_EQ(progress_at_fault(plan, s, first_end * 0.5), 0.0);
  // Fault just after: the first interval's work is committed.
  EXPECT_NEAR(progress_at_fault(plan, s, first_end + 1e-9),
              plan.intervals[0] - s, 1e-9);
  // Fault after everything: all work committed.
  EXPECT_NEAR(progress_at_fault(plan, s,
                                plan.intervals.total_duration() + 1.0),
              plan.planned_work, 1e-9);
}

TEST(ProgressAtFault, MonotoneInFaultTime) {
  const GeometricLifespan failures(std::exp(1.0 / 120.0));
  const auto plan = plan_saves(failures, 4.0, 300.0);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = plan.intervals.total_duration() * i / 100.0;
    const double prog = progress_at_fault(plan, 4.0, t);
    EXPECT_GE(prog, prev);
    prev = prog;
  }
}

TEST(PlanSaves, BeatsOrTiesNaiveFewSaves) {
  // Against the same failure law, the guideline-derived plan's expected
  // committed progress should beat a plan with very few saves (big loss per
  // fault).
  const GeometricLifespan failures(std::exp(1.0 / 150.0));
  const double s = 4.0;
  const auto plan = plan_saves(failures, s, 400.0);
  const Schedule naive = Schedule::equal_periods(400.0 / 2.0 + s, 2);
  EXPECT_GT(plan.expected_progress, expected_work(naive, failures, s));
}

}  // namespace
}  // namespace cs::sim
