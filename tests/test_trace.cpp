// The trace pipeline: generators -> survival estimation -> parametric fits.
#include <cmath>

#include <gtest/gtest.h>

#include "lifefn/families.hpp"
#include "numerics/rng.hpp"
#include "trace/fitters.hpp"
#include "trace/generators.hpp"
#include "trace/owner_trace.hpp"
#include "trace/survival_estimator.hpp"

namespace cs::trace {
namespace {

TEST(OwnerTrace, AppendsContiguousIntervals) {
  OwnerTrace t;
  t.append(10.0, false);
  t.append(5.0, true);
  t.append(7.0, false);
  ASSERT_EQ(t.intervals().size(), 3u);
  EXPECT_DOUBLE_EQ(t.intervals()[1].begin, 10.0);
  EXPECT_DOUBLE_EQ(t.intervals()[1].end, 15.0);
  EXPECT_DOUBLE_EQ(t.total_time(), 22.0);
  EXPECT_EQ(t.episode_count(), 1u);
  EXPECT_NEAR(t.idle_fraction(), 5.0 / 22.0, 1e-12);
  const auto gaps = t.idle_gaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0], 5.0);
}

TEST(OwnerTrace, RejectsNonpositiveDurations) {
  OwnerTrace t;
  EXPECT_THROW(t.append(0.0, true), std::invalid_argument);
  EXPECT_THROW(t.append(-1.0, false), std::invalid_argument);
}

TEST(OwnerTrace, EmptyTraceProperties) {
  const OwnerTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.idle_fraction(), 0.0);
}

TEST(Generators, PoissonSessionsStatistics) {
  num::RandomStream rng(21);
  const auto t = generate_poisson_sessions(
      {.mean_busy = 30.0, .mean_idle = 60.0, .episodes = 4000}, rng);
  EXPECT_EQ(t.episode_count(), 4000u);
  const auto gaps = t.idle_gaps();
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  EXPECT_NEAR(mean, 60.0, 3.0);
}

TEST(Generators, UniformAbsencesBounded) {
  num::RandomStream rng(22);
  const auto t = generate_uniform_absences(
      {.mean_busy = 30.0, .max_gap = 100.0, .episodes = 2000}, rng);
  for (double g : t.idle_gaps()) {
    EXPECT_GT(g, 0.0);
    EXPECT_LE(g, 100.0 + 1e-9);
  }
}

TEST(Generators, CoffeeBreaksBoundedByLifespan) {
  num::RandomStream rng(23);
  const auto t = generate_coffee_breaks(
      {.mean_busy = 30.0, .break_lifespan = 20.0, .episodes = 2000}, rng);
  for (double g : t.idle_gaps()) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 20.0);
  }
  // Geometric-risk gaps concentrate near L (risk doubles): mean > L/2.
  double mean = 0.0;
  for (double g : t.idle_gaps()) mean += g;
  mean /= 2000.0;
  EXPECT_GT(mean, 10.0);
}

TEST(Generators, DayNightIsMixture) {
  num::RandomStream rng(24);
  const auto t = generate_day_night({.mean_busy = 30.0,
                                     .day_mean_idle = 20.0,
                                     .night_max_idle = 500.0,
                                     .night_fraction = 0.5,
                                     .episodes = 3000},
                                    rng);
  int long_gaps = 0;
  for (double g : t.idle_gaps())
    if (g > 100.0) ++long_gaps;
  EXPECT_GT(long_gaps, 500);  // the night mode is clearly present
}

TEST(Generators, ValidateParameters) {
  num::RandomStream rng(25);
  EXPECT_THROW(generate_poisson_sessions({.mean_busy = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_day_night({.night_fraction = 1.5}, rng),
               std::invalid_argument);
}

TEST(SurvivalEstimator, EmpiricalSurvivalStepFunction) {
  const std::vector<double> gaps{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_survival(gaps, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(empirical_survival(gaps, 1.0), 0.75);
  EXPECT_DOUBLE_EQ(empirical_survival(gaps, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empirical_survival(gaps, 4.0), 0.0);
  EXPECT_THROW((void)empirical_survival({}, 1.0), std::invalid_argument);
}

TEST(SurvivalEstimator, RecoversUniformLaw) {
  num::RandomStream rng(26);
  const auto t = generate_uniform_absences(
      {.mean_busy = 10.0, .max_gap = 100.0, .episodes = 4000}, rng);
  const auto fn = estimate_life_function(t);
  const UniformRisk truth(100.0);
  for (double x : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    EXPECT_NEAR(fn->survival(x), truth.survival(x), 0.04) << "x=" << x;
  }
  EXPECT_TRUE(fn->is_monotone_nonincreasing());
}

TEST(SurvivalEstimator, RecoversExponentialLaw) {
  num::RandomStream rng(27);
  const auto t = generate_poisson_sessions(
      {.mean_busy = 10.0, .mean_idle = 50.0, .episodes = 6000}, rng);
  const auto fn = estimate_life_function(t);
  for (double x : {10.0, 50.0, 120.0}) {
    EXPECT_NEAR(fn->survival(x), std::exp(-x / 50.0), 0.04) << "x=" << x;
  }
}

TEST(SurvivalEstimator, RequiresEnoughGaps) {
  OwnerTrace t;
  t.append(1.0, false);
  t.append(2.0, true);
  EXPECT_THROW(estimate_life_function(t), std::invalid_argument);
}

TEST(Fitters, ExponentialRecoversRate) {
  num::RandomStream rng(28);
  std::vector<double> gaps;
  for (int i = 0; i < 5000; ++i) gaps.push_back(rng.exponential(1.0 / 80.0));
  const auto fit = fit_geometric_lifespan(gaps);
  const auto* g = dynamic_cast<GeometricLifespan*>(fit.model.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(1.0 / g->ln_a(), 80.0, 4.0);
  EXPECT_LT(fit.ks_distance, 0.03);
}

TEST(Fitters, UniformRecoversL) {
  num::RandomStream rng(29);
  std::vector<double> gaps;
  for (int i = 0; i < 5000; ++i) gaps.push_back(rng.uniform(0.0, 64.0));
  const auto fit = fit_uniform_risk(gaps);
  const auto* u = dynamic_cast<UniformRisk*>(fit.model.get());
  ASSERT_NE(u, nullptr);
  EXPECT_NEAR(u->L(), 64.0, 1.0);
  EXPECT_LT(fit.ks_distance, 0.03);
}

TEST(Fitters, WeibullRecoversShape) {
  num::RandomStream rng(30);
  const Weibull truth(1.8, 40.0);
  std::vector<double> gaps;
  for (int i = 0; i < 5000; ++i)
    gaps.push_back(truth.inverse_survival(rng.uniform01()));
  const auto fit = fit_weibull(gaps);
  const auto* w = dynamic_cast<Weibull*>(fit.model.get());
  ASSERT_NE(w, nullptr);
  EXPECT_NEAR(w->k(), 1.8, 0.15);
  EXPECT_NEAR(w->scale(), 40.0, 3.0);
}

TEST(Fitters, ModelSelectionPicksTrueFamily) {
  num::RandomStream rng(31);
  {
    std::vector<double> gaps;
    for (int i = 0; i < 4000; ++i) gaps.push_back(rng.exponential(1.0 / 50.0));
    const auto best = select_life_function_model(gaps);
    // Exponential data: geomlife or weibull-with-k~1 both legitimate.
    EXPECT_TRUE(best.family == "geomlife" || best.family == "weibull")
        << best.family;
    if (best.family == "weibull") {
      EXPECT_NEAR(dynamic_cast<Weibull*>(best.model.get())->k(), 1.0, 0.1);
    }
  }
  {
    std::vector<double> gaps;
    for (int i = 0; i < 4000; ++i) gaps.push_back(rng.uniform(0.0, 30.0));
    const auto best = select_life_function_model(gaps);
    EXPECT_TRUE(best.family == "uniform" || best.family == "polyrisk")
        << best.family;
  }
}

TEST(Fitters, GeomriskFitOnCoffeeBreaks) {
  num::RandomStream rng(32);
  const GeometricRisk truth(25.0);
  std::vector<double> gaps;
  for (int i = 0; i < 4000; ++i)
    gaps.push_back(truth.inverse_survival(rng.uniform01()));
  const auto fit = fit_geometric_risk(gaps);
  const auto* g = dynamic_cast<GeometricRisk*>(fit.model.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->L(), 25.0, 1.5);
  EXPECT_LT(fit.ks_distance, 0.05);
  // And model selection should prefer geomrisk over the others here.
  const auto best = select_life_function_model(gaps);
  EXPECT_EQ(best.family, "geomrisk");
}

TEST(Fitters, AllFamiliesSortedByKs) {
  num::RandomStream rng(33);
  std::vector<double> gaps;
  for (int i = 0; i < 1000; ++i) gaps.push_back(rng.exponential(0.05));
  const auto fits = fit_all_families(gaps);
  ASSERT_EQ(fits.size(), 5u);
  for (std::size_t i = 1; i < fits.size(); ++i)
    EXPECT_LE(fits[i - 1].ks_distance, fits[i].ks_distance);
}

// ---- Kaplan–Meier ----------------------------------------------------------

TEST(KaplanMeier, NoCensoringMatchesEcdf) {
  std::vector<CensoredGap> sample;
  const std::vector<double> gaps{1.0, 2.0, 3.0, 4.0};
  for (double g : gaps) sample.push_back({g, false});
  for (double t : {0.5, 1.0, 2.5, 3.5, 4.0}) {
    EXPECT_NEAR(kaplan_meier_survival(sample, t),
                empirical_survival(gaps, t), 1e-12)
        << "t=" << t;
  }
}

TEST(KaplanMeier, TextbookCensoredExample) {
  // Events at 1, 3; censored at 2. n=3.
  // S(1) = 2/3; after censoring at 2 only one at risk; S(3) = 2/3 * 0 = 0.
  const std::vector<CensoredGap> sample{{1.0, false}, {2.0, true},
                                        {3.0, false}};
  EXPECT_NEAR(kaplan_meier_survival(sample, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(kaplan_meier_survival(sample, 1.5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(kaplan_meier_survival(sample, 2.5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(kaplan_meier_survival(sample, 3.5), 0.0, 1e-12);
}

TEST(KaplanMeier, CensoringCorrectsDownwardBias) {
  // Exponential gaps, heavily right-censored at a fixed cutoff.  Naively
  // treating censor times as events biases survival down; KM does not.
  num::RandomStream rng(40);
  const double mean = 50.0;
  const double cutoff = 40.0;
  std::vector<CensoredGap> censored;
  std::vector<double> naive;
  for (int i = 0; i < 8000; ++i) {
    const double g = rng.exponential(1.0 / mean);
    if (g > cutoff) {
      censored.push_back({cutoff, true});
      naive.push_back(cutoff);
    } else {
      censored.push_back({g, false});
      naive.push_back(g);
    }
  }
  const double truth = std::exp(-30.0 / mean);
  EXPECT_NEAR(kaplan_meier_survival(censored, 30.0), truth, 0.02);
  // Naive treatment collapses all censored mass at the cutoff: its survival
  // estimate crashes to ~0 there, while the true survival is still ~0.45.
  std::sort(naive.begin(), naive.end());
  EXPECT_LT(empirical_survival(naive, 40.0), 0.01);
  EXPECT_GT(std::exp(-40.0 / mean), 0.4);
}

TEST(KaplanMeier, ThrowsWithoutUncensoredEvents) {
  EXPECT_THROW((void)kaplan_meier_survival({{1.0, true}, {2.0, true}}, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)kaplan_meier_survival({}, 0.5), std::invalid_argument);
}

TEST(KaplanMeier, IdleGapsCensoredMarksTrailingIdle) {
  OwnerTrace t;
  t.append(5.0, false);
  t.append(3.0, true);
  t.append(4.0, false);
  t.append(7.0, true);  // trace ends mid-idle
  const auto gaps = idle_gaps_censored(t);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_FALSE(gaps[0].censored);
  EXPECT_TRUE(gaps[1].censored);
  EXPECT_DOUBLE_EQ(gaps[1].duration, 7.0);
}

TEST(KaplanMeier, LifeFunctionFromCensoredSample) {
  num::RandomStream rng(41);
  const double mean = 60.0;
  std::vector<CensoredGap> sample;
  for (int i = 0; i < 5000; ++i) {
    const double g = rng.exponential(1.0 / mean);
    // Independent censoring at exponential observation windows.
    const double w = rng.exponential(1.0 / 150.0);
    sample.push_back(g <= w ? CensoredGap{g, false} : CensoredGap{w, true});
  }
  const auto fn = estimate_life_function_km(sample);
  for (double x : {20.0, 60.0, 120.0}) {
    EXPECT_NEAR(fn->survival(x), std::exp(-x / mean), 0.05) << "x=" << x;
  }
  EXPECT_TRUE(fn->is_monotone_nonincreasing());
}

TEST(KaplanMeier, EstimatorRequiresEnoughUncensored) {
  std::vector<CensoredGap> sample;
  for (int i = 0; i < 20; ++i) sample.push_back({1.0 + i, true});
  sample.push_back({5.0, false});
  EXPECT_THROW(estimate_life_function_km(sample), std::invalid_argument);
}

TEST(Fitters, RejectTinySamples) {
  EXPECT_THROW(fit_geometric_lifespan({1.0}), std::invalid_argument);
  EXPECT_THROW(fit_weibull({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_uniform_risk({1.0, -2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cs::trace
