// Trace-driven scheduling: the full pipeline the paper sketches in
// Section 1 — owner usage traces -> estimated life function -> guideline
// schedule — validated against scheduling with the (here known) true law.
//
//   $ ./trace_driven_scheduling [episodes] [c]
#include <cstdlib>
#include <iostream>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main(int argc, char** argv) {
  const std::size_t episodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 2000;
  const double c = argc > 2 ? std::atof(argv[2]) : 2.0;

  std::cout << "Trace-driven scheduling: " << episodes
            << " logged idle episodes, c = " << c << "\n\n";

  // 1. A week at the (simulated) office: memoryless owner with mean absence
  //    of 90 minutes.  Ground truth: geometric lifespan a = e^{1/90}.
  cs::num::RandomStream rng(2026);
  cs::trace::PoissonSessionsParams params{
      .mean_busy = 45.0, .mean_idle = 90.0, .episodes = episodes};
  const cs::trace::OwnerTrace trace =
      cs::trace::generate_poisson_sessions(params, rng);
  std::cout << "Trace: " << trace.episode_count() << " idle gaps, idle "
            << cs::num::Table::percent(trace.idle_fraction()) << " of "
            << trace.total_time() << " minutes\n\n";

  // 2. Estimate a smooth empirical life function from the gaps.
  const auto empirical = cs::trace::estimate_life_function(trace);
  std::cout << "Empirical life function: " << empirical->name() << ", shape "
            << cs::to_string(empirical->shape()) << ", mean lifespan "
            << empirical->mean_lifespan() << " (true 90)\n";

  // 3. Try the parametric fitters and pick the best family by KS distance.
  const auto gaps = trace.idle_gaps();
  const auto fits = cs::trace::fit_all_families(gaps);
  cs::num::Table fit_table({"family", "model", "KS distance"});
  for (const auto& f : fits)
    fit_table.add_row({f.family, f.model->name(),
                       cs::num::Table::num(f.ks_distance, 3)});
  std::cout << '\n' << fit_table.render("Parametric fits (best first)") << '\n';

  // 4. Schedule with (a) the truth, (b) the smoothed empirical curve,
  //    (c) the best parametric fit — and score all three against the truth.
  const cs::GeometricLifespan truth(std::exp(1.0 / params.mean_idle));
  const auto& best_fit = *fits.front().model;

  const auto with_truth = cs::GuidelineScheduler(truth, c).run();
  const auto with_empirical = cs::GuidelineScheduler(*empirical, c).run();
  const auto with_fit = cs::GuidelineScheduler(best_fit, c).run();

  cs::num::Table result({"scheduled against", "t0", "periods",
                         "E under TRUE law", "vs truth-informed"});
  auto score = [&](const char* label, const cs::GuidelineResult& g) {
    const double e = cs::expected_work(g.schedule, truth, c);
    result.add_row({label, cs::num::Table::fixed(g.chosen_t0, 2),
                    std::to_string(g.schedule.size()),
                    cs::num::Table::fixed(e, 3),
                    cs::num::Table::percent(e / cs::expected_work(
                                                    with_truth.schedule, truth,
                                                    c))});
  };
  score("true law (oracle)", with_truth);
  score("smoothed empirical", with_empirical);
  score("best parametric fit", with_fit);
  std::cout << result.render("Robustness to approximate knowledge of p") << '\n';

  std::cout << "The paper's claim (Sec. 1): guidelines 'extend easily to "
               "situations wherein this knowledge is approximate'.\n";
  return 0;
}
