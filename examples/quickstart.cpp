// Quickstart: schedule one cycle-stealing episode with the paper's
// guidelines, and compare against the known optimum and naive strategies.
//
//   $ ./quickstart [L] [c]
//
// Scenario: workstation B's owner is away for at most L minutes with uniform
// return risk (p(t) = 1 - t/L); each work hand-off costs c minutes of
// communication setup.  How should workstation A chunk the work it ships?
#include <cstdlib>
#include <iostream>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main(int argc, char** argv) {
  const double L = argc > 1 ? std::atof(argv[1]) : 480.0;  // an 8-hour night
  const double c = argc > 2 ? std::atof(argv[2]) : 4.0;    // 4-minute setup
  std::cout << "Cycle-stealing quickstart: uniform risk, L = " << L
            << ", c = " << c << "\n\n";

  const cs::UniformRisk p(L);

  // 1. The guideline bracket for the first chunk (Theorems 3.2 / 3.3):
  const cs::T0Bracket bracket = cs::guideline_t0_bracket(p, c);
  std::cout << "Optimal first-chunk bracket (Thm 3.2 / Thm 3.3):\n"
            << "  " << bracket.lower << "  <=  t0  <=  " << bracket.upper
            << "   (paper: sqrt(cL) <= t0 <= 2 sqrt(cL) + 1)\n\n";

  // 2. Expand the full guideline schedule (system 3.6 + t0 search):
  const cs::GuidelineScheduler scheduler(p, c);
  const cs::GuidelineResult g = scheduler.run();
  std::cout << "Guideline schedule: t0 = " << g.chosen_t0 << ", "
            << g.schedule.size() << " periods " << g.schedule.to_string()
            << "\n  expected work E(S;p) = " << g.expected << "\n\n";

  // 3. Compare against the ad-hoc optimum of BCLR [3] and naive strategies:
  const auto optimal = cs::bclr_uniform_optimal(p, c);
  const auto greedy = cs::greedy_schedule(p, c);
  const auto fixed = cs::best_fixed_chunk(p, c);
  const auto once = cs::all_at_once(p, c);

  cs::num::Table table({"strategy", "periods", "t0", "E[work]", "vs optimal"});
  auto row = [&](const char* name, const cs::Schedule& s, double e) {
    table.add_row({name, std::to_string(s.size()),
                   s.empty() ? "-" : cs::num::Table::fixed(s[0], 2),
                   cs::num::Table::fixed(e, 3),
                   cs::num::Table::percent(e / optimal.expected, 1)});
  };
  row("BCLR optimal [3]", optimal.schedule, optimal.expected);
  row("guideline (paper)", g.schedule, g.expected);
  row("greedy", greedy.schedule, greedy.expected);
  row("best fixed chunk", fixed.schedule, fixed.expected);
  row("all at once", once.schedule, once.expected);
  std::cout << table.render("Strategy comparison") << '\n';

  // 4. Sanity-check the model by simulation: the Monte-Carlo mean must match
  //    the analytic E(S;p).
  const auto mc = cs::sim::monte_carlo_episodes(g.schedule, p, c,
                                                {.episodes = 200000});
  const auto ci = cs::num::confidence_interval(mc.work, 3.29);  // 99.9%
  std::cout << "Monte-Carlo check: simulated E = " << mc.work.mean()
            << " (99.9% CI [" << ci.lo << ", " << ci.hi << "]), analytic "
            << g.expected << (ci.contains(g.expected) ? "  [consistent]" : "  [MISMATCH]")
            << '\n';
  return 0;
}
