// A data-parallel farm on a simulated network of workstations: the paper's
// motivating scenario at system scale.  Workstation A owns a bag of
// independent tasks and steals cycles from a heterogeneous pool; we measure
// how long each chunking policy takes to drain the bag.
//
//   $ ./now_farm [tasks] [stations]
#include <cstdlib>
#include <iostream>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main(int argc, char** argv) {
  const std::size_t tasks =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const std::size_t n_each =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  std::cout << "NOW farm: " << tasks << " tasks, " << 3 * n_each
            << " heterogeneous workstations\n\n";

  // A mixed office: some owners take uniform-length absences, some are
  // memoryless, some only take coffee breaks.
  auto build_stations = [&] {
    std::vector<cs::sim::WorkstationConfig> stations;
    const cs::UniformRisk uniform(240.0);
    const cs::GeometricLifespan memoryless(std::exp(1.0 / 120.0));
    const cs::GeometricRisk coffee(30.0);
    for (auto cfg : {std::pair{&static_cast<const cs::LifeFunction&>(uniform),
                               "uniform"},
                     std::pair{&static_cast<const cs::LifeFunction&>(
                                   memoryless),
                               "memoryless"},
                     std::pair{&static_cast<const cs::LifeFunction&>(coffee),
                               "coffee"}}) {
      for (std::size_t i = 0; i < n_each; ++i) {
        cs::sim::WorkstationConfig ws;
        ws.label = std::string(cfg.second) + "-" + std::to_string(i);
        ws.life = cfg.first->clone();
        ws.c = 2.0;
        ws.mean_busy_gap = 60.0;
        stations.push_back(std::move(ws));
      }
    }
    return stations;
  };

  cs::sim::FarmOptions opt;
  opt.task_count = tasks;
  opt.profile = {.kind = cs::sim::TaskProfile::Kind::Uniform,
                 .mean = 1.0,
                 .spread = 0.5};
  opt.seed = 7;

  cs::num::Table table({"policy", "makespan", "throughput", "tasks done",
                        "interrupts", "lost work", "overhead"});
  for (const char* name :
       {"guideline", "greedy", "best-fixed", "doubling", "all-at-once"}) {
    const auto policy = cs::sim::make_policy(name);
    auto stations = build_stations();
    const cs::sim::FarmResult r = cs::sim::run_farm(stations, *policy, opt);
    std::size_t interrupts = 0;
    for (const auto& ws : r.stations) interrupts += ws.interrupted_periods;
    table.add_row({name,
                   r.completed ? cs::num::Table::fixed(r.makespan, 1)
                               : "did not finish",
                   cs::num::Table::fixed(r.throughput(), 4),
                   std::to_string(r.tasks_done), std::to_string(interrupts),
                   cs::num::Table::fixed(r.lost, 1),
                   cs::num::Table::fixed(r.overhead, 1)});
  }
  std::cout << table.render("Draining the task bag (lower makespan is better)")
            << '\n';
  return 0;
}
