// A data-parallel farm on a simulated network of workstations: the paper's
// motivating scenario at system scale.  Workstation A owns a bag of
// independent tasks and steals cycles from a heterogeneous pool; we measure
// how long each chunking policy takes to drain the bag.
//
//   $ ./now_farm [tasks] [stations] [--trace-out F] [--metrics-out F]
//
// `--trace-out F` records the guideline-policy run's full event stream
// (episodes, reclaims, shipped/banked/lost batches) as JSONL; summarize it
// with `cstrace F`.  `--metrics-out F` dumps the metrics registry as JSON.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main(int argc, char** argv) {
  std::size_t positional[2] = {5000, 4};
  int n_positional = 0;
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (n_positional < 2) {
      positional[n_positional++] = std::strtoull(argv[i], nullptr, 10);
    }
  }
  const std::size_t tasks = positional[0];
  const std::size_t n_each = positional[1];
  if (!trace_out.empty() || !metrics_out.empty()) cs::obs::set_enabled(true);
  std::unique_ptr<cs::obs::EventTracer> tracer;
  if (!trace_out.empty()) tracer = std::make_unique<cs::obs::EventTracer>();

  std::cout << "NOW farm: " << tasks << " tasks, " << 3 * n_each
            << " heterogeneous workstations\n\n";

  // A mixed office: some owners take uniform-length absences, some are
  // memoryless, some only take coffee breaks.
  auto build_stations = [&] {
    std::vector<cs::sim::WorkstationConfig> stations;
    const cs::UniformRisk uniform(240.0);
    const cs::GeometricLifespan memoryless(std::exp(1.0 / 120.0));
    const cs::GeometricRisk coffee(30.0);
    for (auto cfg : {std::pair{&static_cast<const cs::LifeFunction&>(uniform),
                               "uniform"},
                     std::pair{&static_cast<const cs::LifeFunction&>(
                                   memoryless),
                               "memoryless"},
                     std::pair{&static_cast<const cs::LifeFunction&>(coffee),
                               "coffee"}}) {
      for (std::size_t i = 0; i < n_each; ++i) {
        cs::sim::WorkstationConfig ws;
        ws.label = std::string(cfg.second) + "-" + std::to_string(i);
        ws.life = cfg.first->clone();
        ws.c = 2.0;
        ws.mean_busy_gap = 60.0;
        stations.push_back(std::move(ws));
      }
    }
    return stations;
  };

  cs::sim::FarmOptions opt;
  opt.task_count = tasks;
  opt.profile = {.kind = cs::sim::TaskProfile::Kind::Uniform,
                 .mean = 1.0,
                 .spread = 0.5};
  opt.seed = 7;

  cs::num::Table table({"policy", "makespan", "throughput", "tasks done",
                        "interrupts", "lost work", "overhead"});
  for (const char* name :
       {"guideline", "greedy", "best-fixed", "doubling", "all-at-once"}) {
    const auto policy = cs::sim::make_policy(name);
    auto stations = build_stations();
    // Trace the guideline run only: one policy per trace file keeps the
    // cstrace summary 1:1 with a single FarmResult.
    opt.tracer =
        std::strcmp(name, "guideline") == 0 ? tracer.get() : nullptr;
    const cs::sim::FarmResult r = cs::sim::run_farm(stations, *policy, opt);
    std::size_t interrupts = 0;
    for (const auto& ws : r.stations) interrupts += ws.interrupted_periods;
    table.add_row({name,
                   r.completed ? cs::num::Table::fixed(r.makespan, 1)
                               : "did not finish",
                   cs::num::Table::fixed(r.throughput(), 4),
                   std::to_string(r.tasks_done), std::to_string(interrupts),
                   cs::num::Table::fixed(r.lost, 1),
                   cs::num::Table::fixed(r.overhead, 1)});
  }
  std::cout << table.render("Draining the task bag (lower makespan is better)")
            << '\n';

  if (tracer) {
    std::ofstream os(trace_out);
    if (!os) {
      std::cerr << "now_farm: cannot open " << trace_out << '\n';
      return 1;
    }
    tracer->write_jsonl(tracer->drain(), os);
    std::cerr << "now_farm: wrote guideline-policy event trace to "
              << trace_out << " (summarize with: cstrace " << trace_out
              << ")\n";
    if (tracer->dropped() > 0)
      std::cerr << "now_farm: trace ring overflowed; " << tracer->dropped()
                << " oldest events dropped\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::cerr << "now_farm: cannot open " << metrics_out << '\n';
      return 1;
    }
    cs::obs::Registry::global().write_json(os);
    std::cerr << "now_farm: wrote metrics registry to " << metrics_out
              << '\n';
  }
  return 0;
}
