// Adaptive (conditional) re-planning — Section 6 of the paper in action.
//
// The recurrence (3.6) is "progressive": t_{k+1} needs only information
// available when period k ends.  This example drives an episode period by
// period, each time re-planning against the conditional survival law given
// survival so far, and shows (a) the plan agrees with the static schedule
// when p is exact, and (b) how a mid-episode belief *update* (the owner
// called to say they'll be back within the hour) changes the remaining plan.
//
//   $ ./adaptive_replanning
#include <iostream>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main() {
  using cs::num::Table;
  const double c = 4.0;
  const cs::UniformRisk p(480.0);

  std::cout << "Adaptive re-planning, uniform risk L=480, c=4\n\n";

  // (a) Progressive plan vs static plan.
  const auto statics = cs::GuidelineScheduler(p, c).run();
  const auto adaptive = cs::adaptive_schedule(p, c);
  Table table({"k", "static t_k", "adaptive t_k (re-planned)"});
  const std::size_t rows =
      std::max(statics.schedule.size(), adaptive.schedule.size());
  for (std::size_t k = 0; k < rows; ++k) {
    table.add_row(
        {std::to_string(k),
         k < statics.schedule.size() ? Table::fixed(statics.schedule[k], 2)
                                     : "-",
         k < adaptive.schedule.size() ? Table::fixed(adaptive.schedule[k], 2)
                                      : "-"});
  }
  std::cout << table.render("Bellman consistency: re-planning reproduces the "
                            "static plan")
            << "E static = " << statics.expected
            << ", E adaptive = " << adaptive.expected << "\n\n";

  // (b) A belief update mid-episode: after two periods (tau elapsed), the
  // owner announces return within 60 minutes — the remaining law collapses
  // to uniform(60).  Re-plan the suffix.
  const double tau = statics.schedule[0] + statics.schedule[1];
  const cs::UniformRisk updated(60.0);
  const auto replanned = cs::GuidelineScheduler(updated, c).run();
  std::cout << "Mid-episode update at tau = " << tau
            << ": owner back within 60.\n"
            << "Old remaining plan: ";
  for (std::size_t k = 2; k < statics.schedule.size(); ++k)
    std::cout << Table::fixed(statics.schedule[k], 1) << ' ';
  std::cout << "\nNew remaining plan: " << replanned.schedule.to_string()
            << "\nExpected remaining work improves from the stale plan's "
            << cs::expected_work(
                   cs::Schedule(std::vector<double>(
                       statics.schedule.periods().begin() + 2,
                       statics.schedule.periods().end())),
                   updated, c)
            << " to the re-planned " << replanned.expected
            << " under the updated law.\n";
  return 0;
}
