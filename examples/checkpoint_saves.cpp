// Scheduling saves in a fault-prone computation — the paper's Section 1
// "Remark": the cycle-stealing model "has applications to real-life problems
// other than ... cycle-stealing", citing Coffman–Flatto–Krenin's scheduling
// of saves.  Intervals between checkpoints play the role of periods; the
// save cost plays the role of c.
//
//   $ ./checkpoint_saves [work] [save_cost]
#include <cstdlib>
#include <iostream>

#include "cyclesteal/cyclesteal.hpp"
#include "numerics/tabulate.hpp"

int main(int argc, char** argv) {
  const double work = argc > 1 ? std::atof(argv[1]) : 600.0;
  const double save_cost = argc > 2 ? std::atof(argv[2]) : 5.0;

  std::cout << "Checkpoint planning: " << work << " minutes of computation, "
            << save_cost << "-minute saves\n\n";

  // Failure law: memoryless faults with MTBF 200 minutes.
  const cs::GeometricLifespan failures(std::exp(1.0 / 200.0));

  const cs::sim::CheckpointPlan plan =
      cs::sim::plan_saves(failures, save_cost, work);

  std::cout << "Plan: " << plan.intervals.size() << " save intervals, covers "
            << plan.planned_work << " work units, expected committed progress "
            << plan.expected_progress << "\n";
  std::cout << "First intervals: " << plan.intervals.to_string() << "\n\n";

  // Fault drill: where does the computation stand if a fault hits at t?
  cs::num::Table table({"fault at", "committed progress", "fraction"});
  for (double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double t = frac * plan.intervals.total_duration();
    const double progress =
        cs::sim::progress_at_fault(plan, save_cost, t);
    table.add_row({cs::num::Table::fixed(t, 1),
                   cs::num::Table::fixed(progress, 1),
                   cs::num::Table::percent(progress / work, 1)});
  }
  std::cout << table.render("Fault drill") << '\n';

  // Compare against naive equal-interval checkpointing with the same number
  // of saves.
  const std::size_t m = plan.intervals.size();
  const double equal_len = plan.intervals.total_duration() /
                           static_cast<double>(m);
  const cs::Schedule equal = cs::Schedule::equal_periods(equal_len, m);
  std::cout << "Expected committed progress, guideline intervals: "
            << plan.expected_progress << "\n";
  std::cout << "Expected committed progress, equal intervals:     "
            << cs::expected_work(equal, failures, save_cost) << "\n";
  std::cout << "(For the memoryless law these agree asymptotically — the "
               "optimal intervals are equal; heavier-tailed failure laws "
               "separate them.)\n";
  return 0;
}
