#!/usr/bin/env bash
# Tier-1 verification gate.
#
#   ./ci.sh            # full gate: build, ctest, smoke, cslint (--strict
#                      #   interprocedural run with the persisted summary
#                      #   cache, SARIF artifact at build/cslint.sarif, over
#                      #   src/+tools/+bench/), mc (csmc litmus gate:
#                      #   exhaustive small + bounded large), format,
#                      #   clang-tidy wall, ASan/UBSan pass, TSan pass,
#                      #   csserve soak (verifies the
#                      #   --metrics-out/--trace-out SIGINT flush), steal
#                      #   runtime gate (test_steal under ASan, the
#                      #   StealHammer cases under TSan, exp15 smoke), bench
#                      #   snapshot (perf_micro + csload --json + exp15
#                      #   steal_runtime + live stats
#                      #   -> BENCH_<n>.json, build/stats-snapshot.json;
#                      #   refuses debug builds, fail-soft per-benchmark
#                      #   diff vs the previous BENCH via tools/bench_diff.py,
#                      #   per-benchmark rows folded into the summary table)
#   ./ci.sh --fast     # build, ctest, smoke, cslint, mc, format only
#
# Stages that need a tool the host lacks (clang-tidy, clang-format) are
# SKIPPED with a warning rather than failed — the sanitizers and cslint are
# the hard gates everywhere; the clang stages harden CI hosts that have
# them.  A per-stage summary table is printed at the end either way.
set -uo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

# ------------------------------------------------------------ stage driver
stage_names=()
stage_results=()

note() { printf '\n== %s ==\n' "$1"; }

# record <name> <PASS|FAIL|SKIP>
record() {
  stage_names+=("$1")
  stage_results+=("$2")
}

# run_stage <name> <fn> — runs fn, records PASS/FAIL, exits early on FAIL.
run_stage() {
  local name="$1" fn="$2"
  note "$name"
  if "$fn"; then
    record "$name" PASS
  else
    record "$name" FAIL
    summarize
    echo "ci.sh: stage '$name' FAILED"
    exit 1
  fi
}

skip_stage() {
  local name="$1" why="$2"
  note "$name"
  echo "WARNING: skipping — $why"
  record "$name" SKIP
}

summarize() {
  printf '\n== ci.sh stage summary ==\n'
  printf '%-28s %s\n' "stage" "result"
  printf '%-28s %s\n' "-----" "------"
  local i
  for i in "${!stage_names[@]}"; do
    printf '%-28s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
  done
}

# ----------------------------------------------------------------- stages
stage_build() {
  cmake --preset default && cmake --build --preset default
}

stage_ctest() {
  ctest --preset default
}

stage_smoke() {
  local serve_log port=""
  serve_log="$(mktemp)"
  ./build/tools/csserve --port 0 2>"$serve_log" &
  local serve_pid=$!
  for _ in $(seq 1 50); do
    port="$(grep -oE 'listening on [0-9.]+:[0-9]+' "$serve_log" \
            | grep -oE '[0-9]+$' || true)"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "csserve failed to start"; cat "$serve_log"; return 1
  fi
  ./build/tools/csload --port "$port" --requests 2000 --threads 4 \
    --life uniform:L=1000 --life geomlife:half=100 --c 4 --warm || return 1
  kill -INT "$serve_pid"
  wait "$serve_pid"
  rm -f "$serve_log"
}

stage_cslint() {
  # Interprocedural --strict run over the whole tree (src/ + tools/ +
  # bench/): stale suppressions are errors, the call graph + flow rules run
  # transitively, and the SARIF artifact is what CI uploads for
  # code-scanning annotation.  Two caches keep the rescan fast: the
  # per-function summary cache (content-keyed, so it is safe under
  # --strict — only changed files reparse) and the header-standalone cache
  # (ignored on read under --strict but refreshed, so later incremental
  # runs start warm).  tools/ headers include "mc/..." by the repo
  # convention, hence the extra -I src.  The per-rule counts line is folded
  # into the stage summary table.
  local out rc
  out="$(mktemp)"
  ./build/tools/cslint --strict \
    -I src \
    --cache build/cslint-cache.txt \
    --summary-cache build/cslint-summaries.txt \
    --stats \
    --sarif build/cslint.sarif \
    --baseline tools/cslint/baseline.txt \
    src/ tools/ bench/ | tee "$out"
  rc=${PIPESTATUS[0]}
  local kv
  for kv in $(grep -oE 'rule-counts: .*' "$out" | head -1 | cut -d' ' -f2-); do
    record "  cslint ${kv%%=*}" "${kv#*=}"
  done
  local rate
  rate="$(grep -oE 'resolution-rate=[0-9.]+%' "$out" | head -1 | cut -d= -f2)"
  [[ -n "$rate" ]] && record "  cslint resolution" "$rate"
  rm -f "$out"
  return "$rc"
}

# Model-checker gate: every small litmus program explored EXHAUSTIVELY
# (schedules x reads-from choices), then the large owner-vs-thieves farm
# under its bounded-preemption defaults.  Per-litmus wall caps + an outer
# timeout keep a state-space regression a fast failure, not a CI hang.  The
# per-litmus PASS/FAIL lines are csmc's own; the stage rows record the two
# sub-runs in the summary table.
stage_mc() {
  echo "-- csmc: small litmuses, exhaustive"
  if timeout 300 ./build/tools/csmc --all --wall-ms 60000; then
    record "  mc small (exhaustive)" PASS
  else
    record "  mc small (exhaustive)" FAIL
    return 1
  fi
  echo "-- csmc: large litmus, bounded preemption"
  if timeout 300 ./build/tools/csmc deque-owner-vs-thieves-large \
      --wall-ms 120000; then
    record "  mc large (bounded)" PASS
  else
    record "  mc large (bounded)" FAIL
    return 1
  fi
}

stage_format() {
  # --dry-run -Werror: nonzero when any file would be reformatted.
  git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run -Werror
}

stage_clang_tidy() {
  cmake --preset lint && cmake --build --preset lint
}

stage_asan() {
  cmake --preset asan && cmake --build --preset asan || return 1
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
  local t
  for t in test_obs test_parallel test_sim_farm test_sim_episode \
           test_engine test_net test_csserve test_race_stress; do
    echo "-- $t"
    ./build-asan/tests/"$t" || return 1
  done
}

stage_tsan() {
  cmake --preset tsan && cmake --build --preset tsan || return 1
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  local t
  for t in test_engine test_net test_csserve test_parallel test_obs \
           test_sim_farm test_race_stress; do
    echo "-- $t"
    ./build-tsan/tests/"$t" || return 1
  done
}

# soak_one <builddir> — a csload burst against that build's csserve, then a
# SIGINT drain; fails on request errors, a non-zero server exit, or a hang
# (timeout bounds the wall-clock).  The server runs with --metrics-out and
# --trace-out so the drain path that flushes both is exercised under the
# sanitizers; an empty artifact after the drain is a failure.
soak_one() {
  local bindir="$1" serve_log port="" rc metrics trace
  serve_log="$(mktemp)"
  metrics="$(mktemp)"
  trace="$(mktemp)"
  "$bindir"/tools/csserve --port 0 --loops 2 --threads 4 \
    --max-inflight 256 --metrics-out "$metrics" \
    --trace-out "$trace" --trace-sample 100 2>"$serve_log" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    port="$(grep -oE 'listening on [0-9.]+:[0-9]+' "$serve_log" \
            | grep -oE '[0-9]+$' || true)"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "csserve ($bindir) failed to start"; cat "$serve_log"; return 1
  fi
  timeout 180 "$bindir"/tools/csload --port "$port" --requests 20000 \
    --threads 32 --life uniform:L=1000 --life geomlife:half=100 --c 4 \
    --warm --v2 --retries 3 || { kill -9 "$serve_pid"; return 1; }
  kill -INT "$serve_pid"
  wait "$serve_pid"; rc=$?
  rm -f "$serve_log"
  if [[ "$rc" != "0" ]]; then
    echo "csserve ($bindir) exited $rc after SIGINT drain"; return 1
  fi
  if [[ ! -s "$metrics" ]]; then
    echo "csserve ($bindir) wrote no metrics on SIGINT drain"; return 1
  fi
  if [[ ! -s "$trace" ]]; then
    echo "csserve ($bindir) wrote no spans on SIGINT drain"; return 1
  fi
  rm -f "$metrics" "$trace"
}

stage_soak() {
  # Sanitizer binaries already built by the asan/tsan stages.
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  echo "-- soak: asan build" && soak_one build-asan || return 1
  echo "-- soak: tsan build" && soak_one build-tsan || return 1
}

# Steal-runtime gate: the full test_steal suite under ASan (memory bugs in
# the deque's ring-growth path are the scary failure mode), the concurrency
# hammer cases under TSan (that filter is the set sized for the sanitizer's
# ~10x slowdown — the statistical fidelity test adds nothing under TSan),
# and an exp15 smoke run of both farm runtimes end to end.
stage_steal() {
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  echo "-- asan: test_steal"
  ./build-asan/tests/test_steal || return 1
  echo "-- tsan: test_steal (hammer cases)"
  ./build-tsan/tests/test_steal --gtest_filter='StealHammer.*' || return 1
  echo "-- exp15 smoke"
  timeout 300 ./build/bench/exp15_steal_runtime --smoke || return 1
}

# Benchmark snapshot: the solver-layer microbenchmarks plus a short serving
# run with csload's open-loop recorder, composed with the server's own v2
# stats snapshot into BENCH_<n>.json at the repo root (next free n, so old
# snapshots are never overwritten — diff them across PRs).
stage_bench() {
  local perf_json csload_json steal_json stats_json serve_log port="" n
  perf_json="$(mktemp)"
  csload_json="$(mktemp)"
  steal_json="$(mktemp)"
  stats_json="build/stats-snapshot.json"
  serve_log="$(mktemp)"

  # Refuse to record numbers from an unoptimized build: a debug BENCH_<n>
  # poisons every later regression diff.  perf_micro independently refuses
  # --json when compiled without NDEBUG; this guard catches the build-dir
  # level mistake (e.g. a CMAKE_BUILD_TYPE=Debug preset edit) first, with a
  # clearer message.
  local build_type
  build_type="$(grep -E '^CMAKE_BUILD_TYPE:' build/CMakeCache.txt \
                | cut -d= -f2)"
  case "$build_type" in
    Release|RelWithDebInfo) ;;
    *)
      echo "bench stage refuses CMAKE_BUILD_TYPE='$build_type':"
      echo "benchmark snapshots must come from Release or RelWithDebInfo"
      return 1
      ;;
  esac

  echo "-- perf_micro"
  ./build/bench/perf_micro --benchmark_min_time=0.05 \
    --benchmark_format=json >"$perf_json" || return 1

  echo "-- exp15 steal runtime (--json)"
  timeout 300 ./build/bench/exp15_steal_runtime --json "$steal_json" \
    || return 1

  echo "-- csload (open-loop, --json)"
  ./build/tools/csserve --port 0 --loops 2 --threads 4 2>"$serve_log" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    port="$(grep -oE 'listening on [0-9.]+:[0-9]+' "$serve_log" \
            | grep -oE '[0-9]+$' || true)"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "csserve failed to start"; cat "$serve_log"; return 1
  fi
  timeout 120 ./build/tools/csload --port "$port" --requests 20000 \
    --threads 8 --life uniform:L=1000 --c 4 --warm --v2 \
    --json "$csload_json" || { kill -9 "$serve_pid"; return 1; }

  # Live stats-plane snapshot over the wire (no client dependency: the v2
  # stats verb is one JSON line over TCP, which bash can speak natively).
  if ! { exec 3<>"/dev/tcp/127.0.0.1/$port" &&
         printf '{"v":2,"cmd":"stats"}\n' >&3 &&
         head -1 <&3 >"$stats_json"; }; then
    echo "stats snapshot fetch failed"; kill -9 "$serve_pid"; return 1
  fi
  exec 3<&- 3>&-
  kill -INT "$serve_pid"
  wait "$serve_pid" || { echo "csserve exited non-zero"; return 1; }
  [[ -s "$stats_json" ]] || { echo "empty stats snapshot"; return 1; }

  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  {
    printf '{\n"perf_micro": '
    cat "$perf_json"
    printf ',\n"csload": '
    cat "$csload_json"
    printf ',\n"steal_runtime": '
    cat "$steal_json"
    printf ',\n"server_stats": '
    cat "$stats_json"
    printf '}\n'
  } >"BENCH_${n}.json"
  record "  artifact" "BENCH_${n}.json"
  record "  artifact" "$stats_json"
  rm -f "$perf_json" "$csload_json" "$steal_json" "$serve_log"

  # Fail-soft regression diff against the previous snapshot: bench hosts are
  # noisy, so a wall-clock delta is a loud table row, never a red build.
  # (bench_diff.py grows a --max-regress gate for release branches and local
  # bisects; CI deliberately stays fail-soft.)  The machine-readable `row:`
  # lines are folded into the stage summary table, one row per benchmark.
  if [[ "$n" -gt 1 ]] && command -v python3 >/dev/null 2>&1; then
    echo "-- bench diff vs BENCH_$((n - 1)).json"
    local diff_out
    diff_out="$(mktemp)"
    python3 tools/bench_diff.py "BENCH_$((n - 1)).json" "BENCH_${n}.json" \
      | tee "$diff_out" \
      || echo "WARNING: bench diff unavailable (non-fatal)"
    local bench old new pct
    while read -r _ bench old new pct; do
      record "  bench ${bench}" "${old} -> ${new} (${pct}%)"
    done < <(grep -E '^row: ' "$diff_out")
    rm -f "$diff_out"
  fi
}

# ------------------------------------------------------------------- plan
run_stage "build (default)" stage_build
run_stage "ctest (full suite)" stage_ctest
run_stage "csserve smoke" stage_smoke
run_stage "cslint (strict + SARIF)" stage_cslint
run_stage "mc (model checker)" stage_mc

if command -v clang-format >/dev/null 2>&1; then
  run_stage "format check" stage_format
else
  skip_stage "format check" "clang-format not installed on this host"
fi

if [[ "$fast" == "0" ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    run_stage "clang-tidy wall (lint)" stage_clang_tidy
  else
    skip_stage "clang-tidy wall (lint)" "clang-tidy not installed on this host"
  fi
  run_stage "ASan/UBSan pass" stage_asan
  run_stage "TSan pass" stage_tsan
  run_stage "csserve soak (asan+tsan)" stage_soak
  run_stage "steal runtime (asan+tsan)" stage_steal
  run_stage "bench snapshot (BENCH_n)" stage_bench
fi

summarize
echo "ci.sh: all green"
