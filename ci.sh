#!/usr/bin/env bash
# Tier-1 verification gate: build + full test suite, then an ASan/UBSan pass
# over the observability and parallelism tests (the suite's concurrent code).
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default

echo "== ctest (full suite) =="
ctest --preset default

echo "== csserve smoke (loopback solve via csload) =="
serve_log="$(mktemp)"
./build/tools/csserve --port 0 2>"$serve_log" &
serve_pid=$!
for _ in $(seq 1 50); do
  port="$(grep -oE 'listening on [0-9.]+:[0-9]+' "$serve_log" \
          | grep -oE '[0-9]+$' || true)"
  [[ -n "$port" ]] && break
  sleep 0.1
done
[[ -n "${port:-}" ]] || { echo "csserve failed to start"; cat "$serve_log"; exit 1; }
./build/tools/csload --port "$port" --requests 2000 --threads 4 \
  --life uniform:L=1000 --life geomlife:half=100 --c 4 --warm
kill -INT "$serve_pid"
wait "$serve_pid"
rm -f "$serve_log"

if [[ "$fast" == "0" ]]; then
  echo "== configure + build (preset: asan) =="
  cmake --preset asan
  cmake --build --preset asan

  echo "== ASan/UBSan pass (obs + parallel + sim + engine concurrency) =="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
  for t in test_obs test_parallel test_sim_farm test_sim_episode \
           test_engine test_csserve; do
    echo "-- $t"
    ./build-asan/tests/"$t"
  done
fi

echo "== ci.sh: all green =="
