#!/usr/bin/env bash
# Tier-1 verification gate: build + full test suite, then an ASan/UBSan pass
# over the observability and parallelism tests (the suite's concurrent code).
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default

echo "== ctest (full suite) =="
ctest --preset default

if [[ "$fast" == "0" ]]; then
  echo "== configure + build (preset: asan) =="
  cmake --preset asan
  cmake --build --preset asan

  echo "== ASan/UBSan pass (obs + parallel + sim concurrency) =="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
  for t in test_obs test_parallel test_sim_farm test_sim_episode; do
    echo "-- $t"
    ./build-asan/tests/"$t"
  done
fi

echo "== ci.sh: all green =="
