file(REMOVE_RECURSE
  "CMakeFiles/exp4_geom_risk.dir/exp4_geom_risk.cpp.o"
  "CMakeFiles/exp4_geom_risk.dir/exp4_geom_risk.cpp.o.d"
  "exp4_geom_risk"
  "exp4_geom_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_geom_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
