# Empty dependencies file for exp4_geom_risk.
# This may be replaced when dependencies are built.
