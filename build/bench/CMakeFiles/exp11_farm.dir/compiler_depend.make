# Empty compiler generated dependencies file for exp11_farm.
# This may be replaced when dependencies are built.
