file(REMOVE_RECURSE
  "CMakeFiles/exp11_farm.dir/exp11_farm.cpp.o"
  "CMakeFiles/exp11_farm.dir/exp11_farm.cpp.o.d"
  "exp11_farm"
  "exp11_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
