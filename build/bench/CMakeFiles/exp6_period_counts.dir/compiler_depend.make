# Empty compiler generated dependencies file for exp6_period_counts.
# This may be replaced when dependencies are built.
