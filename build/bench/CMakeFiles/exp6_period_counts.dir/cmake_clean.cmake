file(REMOVE_RECURSE
  "CMakeFiles/exp6_period_counts.dir/exp6_period_counts.cpp.o"
  "CMakeFiles/exp6_period_counts.dir/exp6_period_counts.cpp.o.d"
  "exp6_period_counts"
  "exp6_period_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_period_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
