# Empty compiler generated dependencies file for exp8_monte_carlo.
# This may be replaced when dependencies are built.
