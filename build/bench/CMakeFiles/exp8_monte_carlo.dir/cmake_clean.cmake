file(REMOVE_RECURSE
  "CMakeFiles/exp8_monte_carlo.dir/exp8_monte_carlo.cpp.o"
  "CMakeFiles/exp8_monte_carlo.dir/exp8_monte_carlo.cpp.o.d"
  "exp8_monte_carlo"
  "exp8_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp8_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
