# Empty dependencies file for exp3_geom_lifespan.
# This may be replaced when dependencies are built.
