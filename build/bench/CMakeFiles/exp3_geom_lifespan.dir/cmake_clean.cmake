file(REMOVE_RECURSE
  "CMakeFiles/exp3_geom_lifespan.dir/exp3_geom_lifespan.cpp.o"
  "CMakeFiles/exp3_geom_lifespan.dir/exp3_geom_lifespan.cpp.o.d"
  "exp3_geom_lifespan"
  "exp3_geom_lifespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_geom_lifespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
