file(REMOVE_RECURSE
  "CMakeFiles/exp1_uniform_t0.dir/exp1_uniform_t0.cpp.o"
  "CMakeFiles/exp1_uniform_t0.dir/exp1_uniform_t0.cpp.o.d"
  "exp1_uniform_t0"
  "exp1_uniform_t0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_uniform_t0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
