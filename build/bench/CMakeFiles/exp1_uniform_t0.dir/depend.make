# Empty dependencies file for exp1_uniform_t0.
# This may be replaced when dependencies are built.
