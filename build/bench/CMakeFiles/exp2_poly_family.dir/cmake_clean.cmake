file(REMOVE_RECURSE
  "CMakeFiles/exp2_poly_family.dir/exp2_poly_family.cpp.o"
  "CMakeFiles/exp2_poly_family.dir/exp2_poly_family.cpp.o.d"
  "exp2_poly_family"
  "exp2_poly_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_poly_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
