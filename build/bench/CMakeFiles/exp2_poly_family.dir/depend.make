# Empty dependencies file for exp2_poly_family.
# This may be replaced when dependencies are built.
