# Empty dependencies file for exp12_adaptive_sensitivity.
# This may be replaced when dependencies are built.
