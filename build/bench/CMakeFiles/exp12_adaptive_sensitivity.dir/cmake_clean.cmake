file(REMOVE_RECURSE
  "CMakeFiles/exp12_adaptive_sensitivity.dir/exp12_adaptive_sensitivity.cpp.o"
  "CMakeFiles/exp12_adaptive_sensitivity.dir/exp12_adaptive_sensitivity.cpp.o.d"
  "exp12_adaptive_sensitivity"
  "exp12_adaptive_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_adaptive_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
