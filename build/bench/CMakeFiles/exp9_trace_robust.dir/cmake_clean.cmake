file(REMOVE_RECURSE
  "CMakeFiles/exp9_trace_robust.dir/exp9_trace_robust.cpp.o"
  "CMakeFiles/exp9_trace_robust.dir/exp9_trace_robust.cpp.o.d"
  "exp9_trace_robust"
  "exp9_trace_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp9_trace_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
