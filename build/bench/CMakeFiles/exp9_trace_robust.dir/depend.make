# Empty dependencies file for exp9_trace_robust.
# This may be replaced when dependencies are built.
