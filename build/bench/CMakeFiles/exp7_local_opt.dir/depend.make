# Empty dependencies file for exp7_local_opt.
# This may be replaced when dependencies are built.
