file(REMOVE_RECURSE
  "CMakeFiles/exp7_local_opt.dir/exp7_local_opt.cpp.o"
  "CMakeFiles/exp7_local_opt.dir/exp7_local_opt.cpp.o.d"
  "exp7_local_opt"
  "exp7_local_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp7_local_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
