# Empty compiler generated dependencies file for exp14_worst_case.
# This may be replaced when dependencies are built.
