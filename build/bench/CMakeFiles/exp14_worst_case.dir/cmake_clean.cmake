file(REMOVE_RECURSE
  "CMakeFiles/exp14_worst_case.dir/exp14_worst_case.cpp.o"
  "CMakeFiles/exp14_worst_case.dir/exp14_worst_case.cpp.o.d"
  "exp14_worst_case"
  "exp14_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
