file(REMOVE_RECURSE
  "CMakeFiles/exp10_admissibility.dir/exp10_admissibility.cpp.o"
  "CMakeFiles/exp10_admissibility.dir/exp10_admissibility.cpp.o.d"
  "exp10_admissibility"
  "exp10_admissibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_admissibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
