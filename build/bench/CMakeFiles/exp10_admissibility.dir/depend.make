# Empty dependencies file for exp10_admissibility.
# This may be replaced when dependencies are built.
