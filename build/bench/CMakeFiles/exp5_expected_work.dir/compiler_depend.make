# Empty compiler generated dependencies file for exp5_expected_work.
# This may be replaced when dependencies are built.
