file(REMOVE_RECURSE
  "CMakeFiles/exp5_expected_work.dir/exp5_expected_work.cpp.o"
  "CMakeFiles/exp5_expected_work.dir/exp5_expected_work.cpp.o.d"
  "exp5_expected_work"
  "exp5_expected_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_expected_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
