file(REMOVE_RECURSE
  "CMakeFiles/exp13_discrete.dir/exp13_discrete.cpp.o"
  "CMakeFiles/exp13_discrete.dir/exp13_discrete.cpp.o.d"
  "exp13_discrete"
  "exp13_discrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
