# Empty compiler generated dependencies file for exp13_discrete.
# This may be replaced when dependencies are built.
