# Empty compiler generated dependencies file for test_t0_bounds.
# This may be replaced when dependencies are built.
