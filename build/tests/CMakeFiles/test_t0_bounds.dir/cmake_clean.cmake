file(REMOVE_RECURSE
  "CMakeFiles/test_t0_bounds.dir/test_t0_bounds.cpp.o"
  "CMakeFiles/test_t0_bounds.dir/test_t0_bounds.cpp.o.d"
  "test_t0_bounds"
  "test_t0_bounds.pdb"
  "test_t0_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_t0_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
