# Empty compiler generated dependencies file for test_sim_task_bag.
# This may be replaced when dependencies are built.
