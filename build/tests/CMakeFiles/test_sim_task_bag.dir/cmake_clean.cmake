file(REMOVE_RECURSE
  "CMakeFiles/test_sim_task_bag.dir/test_sim_task_bag.cpp.o"
  "CMakeFiles/test_sim_task_bag.dir/test_sim_task_bag.cpp.o.d"
  "test_sim_task_bag"
  "test_sim_task_bag.pdb"
  "test_sim_task_bag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_task_bag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
