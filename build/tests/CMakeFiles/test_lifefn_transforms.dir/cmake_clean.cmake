file(REMOVE_RECURSE
  "CMakeFiles/test_lifefn_transforms.dir/test_lifefn_transforms.cpp.o"
  "CMakeFiles/test_lifefn_transforms.dir/test_lifefn_transforms.cpp.o.d"
  "test_lifefn_transforms"
  "test_lifefn_transforms.pdb"
  "test_lifefn_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifefn_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
