# Empty dependencies file for test_lifefn_transforms.
# This may be replaced when dependencies are built.
