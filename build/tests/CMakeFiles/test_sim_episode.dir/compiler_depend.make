# Empty compiler generated dependencies file for test_sim_episode.
# This may be replaced when dependencies are built.
