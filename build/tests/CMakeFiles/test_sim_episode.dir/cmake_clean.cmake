file(REMOVE_RECURSE
  "CMakeFiles/test_sim_episode.dir/test_sim_episode.cpp.o"
  "CMakeFiles/test_sim_episode.dir/test_sim_episode.cpp.o.d"
  "test_sim_episode"
  "test_sim_episode.pdb"
  "test_sim_episode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_episode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
