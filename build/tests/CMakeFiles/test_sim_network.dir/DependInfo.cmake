
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_network.cpp" "tests/CMakeFiles/test_sim_network.dir/test_sim_network.cpp.o" "gcc" "tests/CMakeFiles/test_sim_network.dir/test_sim_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/cs_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/lifefn/CMakeFiles/cs_lifefn.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cs_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
