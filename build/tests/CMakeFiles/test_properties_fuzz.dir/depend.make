# Empty dependencies file for test_properties_fuzz.
# This may be replaced when dependencies are built.
