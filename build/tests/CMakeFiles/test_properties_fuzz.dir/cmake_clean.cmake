file(REMOVE_RECURSE
  "CMakeFiles/test_properties_fuzz.dir/test_properties_fuzz.cpp.o"
  "CMakeFiles/test_properties_fuzz.dir/test_properties_fuzz.cpp.o.d"
  "test_properties_fuzz"
  "test_properties_fuzz.pdb"
  "test_properties_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
