file(REMOVE_RECURSE
  "CMakeFiles/test_guideline.dir/test_guideline.cpp.o"
  "CMakeFiles/test_guideline.dir/test_guideline.cpp.o.d"
  "test_guideline"
  "test_guideline.pdb"
  "test_guideline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
