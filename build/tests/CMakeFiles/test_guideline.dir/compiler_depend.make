# Empty compiler generated dependencies file for test_guideline.
# This may be replaced when dependencies are built.
