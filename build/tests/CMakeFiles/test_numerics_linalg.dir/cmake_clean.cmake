file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_linalg.dir/test_numerics_linalg.cpp.o"
  "CMakeFiles/test_numerics_linalg.dir/test_numerics_linalg.cpp.o.d"
  "test_numerics_linalg"
  "test_numerics_linalg.pdb"
  "test_numerics_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
