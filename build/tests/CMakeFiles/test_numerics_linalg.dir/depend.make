# Empty dependencies file for test_numerics_linalg.
# This may be replaced when dependencies are built.
