# Empty dependencies file for test_dp_reference.
# This may be replaced when dependencies are built.
