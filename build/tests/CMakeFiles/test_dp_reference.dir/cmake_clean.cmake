file(REMOVE_RECURSE
  "CMakeFiles/test_dp_reference.dir/test_dp_reference.cpp.o"
  "CMakeFiles/test_dp_reference.dir/test_dp_reference.cpp.o.d"
  "test_dp_reference"
  "test_dp_reference.pdb"
  "test_dp_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
