file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_calculus.dir/test_numerics_calculus.cpp.o"
  "CMakeFiles/test_numerics_calculus.dir/test_numerics_calculus.cpp.o.d"
  "test_numerics_calculus"
  "test_numerics_calculus.pdb"
  "test_numerics_calculus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
