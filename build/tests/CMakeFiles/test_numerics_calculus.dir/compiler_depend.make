# Empty compiler generated dependencies file for test_numerics_calculus.
# This may be replaced when dependencies are built.
