file(REMOVE_RECURSE
  "CMakeFiles/test_lifefn_families.dir/test_lifefn_families.cpp.o"
  "CMakeFiles/test_lifefn_families.dir/test_lifefn_families.cpp.o.d"
  "test_lifefn_families"
  "test_lifefn_families.pdb"
  "test_lifefn_families[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifefn_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
