# Empty compiler generated dependencies file for test_numerics_output.
# This may be replaced when dependencies are built.
