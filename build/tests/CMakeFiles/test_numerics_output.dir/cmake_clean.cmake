file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_output.dir/test_numerics_output.cpp.o"
  "CMakeFiles/test_numerics_output.dir/test_numerics_output.cpp.o.d"
  "test_numerics_output"
  "test_numerics_output.pdb"
  "test_numerics_output[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
