# Empty dependencies file for test_lifefn_shape.
# This may be replaced when dependencies are built.
