file(REMOVE_RECURSE
  "CMakeFiles/test_lifefn_shape.dir/test_lifefn_shape.cpp.o"
  "CMakeFiles/test_lifefn_shape.dir/test_lifefn_shape.cpp.o.d"
  "test_lifefn_shape"
  "test_lifefn_shape.pdb"
  "test_lifefn_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifefn_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
