file(REMOVE_RECURSE
  "CMakeFiles/test_recurrence.dir/test_recurrence.cpp.o"
  "CMakeFiles/test_recurrence.dir/test_recurrence.cpp.o.d"
  "test_recurrence"
  "test_recurrence.pdb"
  "test_recurrence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
