file(REMOVE_RECURSE
  "CMakeFiles/test_lifefn_factory.dir/test_lifefn_factory.cpp.o"
  "CMakeFiles/test_lifefn_factory.dir/test_lifefn_factory.cpp.o.d"
  "test_lifefn_factory"
  "test_lifefn_factory.pdb"
  "test_lifefn_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifefn_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
