# Empty dependencies file for test_lifefn_factory.
# This may be replaced when dependencies are built.
