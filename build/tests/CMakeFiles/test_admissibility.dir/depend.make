# Empty dependencies file for test_admissibility.
# This may be replaced when dependencies are built.
