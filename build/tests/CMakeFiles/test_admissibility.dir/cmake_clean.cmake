file(REMOVE_RECURSE
  "CMakeFiles/test_admissibility.dir/test_admissibility.cpp.o"
  "CMakeFiles/test_admissibility.dir/test_admissibility.cpp.o.d"
  "test_admissibility"
  "test_admissibility.pdb"
  "test_admissibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admissibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
