file(REMOVE_RECURSE
  "CMakeFiles/test_expected_work.dir/test_expected_work.cpp.o"
  "CMakeFiles/test_expected_work.dir/test_expected_work.cpp.o.d"
  "test_expected_work"
  "test_expected_work.pdb"
  "test_expected_work[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expected_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
