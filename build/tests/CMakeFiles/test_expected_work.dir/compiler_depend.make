# Empty compiler generated dependencies file for test_expected_work.
# This may be replaced when dependencies are built.
