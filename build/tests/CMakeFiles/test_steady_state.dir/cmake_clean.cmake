file(REMOVE_RECURSE
  "CMakeFiles/test_steady_state.dir/test_steady_state.cpp.o"
  "CMakeFiles/test_steady_state.dir/test_steady_state.cpp.o.d"
  "test_steady_state"
  "test_steady_state.pdb"
  "test_steady_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
