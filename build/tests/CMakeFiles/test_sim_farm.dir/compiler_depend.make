# Empty compiler generated dependencies file for test_sim_farm.
# This may be replaced when dependencies are built.
