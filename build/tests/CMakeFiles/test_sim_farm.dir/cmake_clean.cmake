file(REMOVE_RECURSE
  "CMakeFiles/test_sim_farm.dir/test_sim_farm.cpp.o"
  "CMakeFiles/test_sim_farm.dir/test_sim_farm.cpp.o.d"
  "test_sim_farm"
  "test_sim_farm.pdb"
  "test_sim_farm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
