# Empty dependencies file for test_numerics_interp.
# This may be replaced when dependencies are built.
