file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_interp.dir/test_numerics_interp.cpp.o"
  "CMakeFiles/test_numerics_interp.dir/test_numerics_interp.cpp.o.d"
  "test_numerics_interp"
  "test_numerics_interp.pdb"
  "test_numerics_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
