file(REMOVE_RECURSE
  "CMakeFiles/test_worst_case.dir/test_worst_case.cpp.o"
  "CMakeFiles/test_worst_case.dir/test_worst_case.cpp.o.d"
  "test_worst_case"
  "test_worst_case.pdb"
  "test_worst_case[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
