
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/checkpoint.cpp" "src/sim/CMakeFiles/cs_sim.dir/checkpoint.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/checkpoint.cpp.o.d"
  "/root/repo/src/sim/episode.cpp" "src/sim/CMakeFiles/cs_sim.dir/episode.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/episode.cpp.o.d"
  "/root/repo/src/sim/farm.cpp" "src/sim/CMakeFiles/cs_sim.dir/farm.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/farm.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/cs_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/sim/CMakeFiles/cs_sim.dir/policy.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/policy.cpp.o.d"
  "/root/repo/src/sim/reclaim.cpp" "src/sim/CMakeFiles/cs_sim.dir/reclaim.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/reclaim.cpp.o.d"
  "/root/repo/src/sim/task_bag.cpp" "src/sim/CMakeFiles/cs_sim.dir/task_bag.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/task_bag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/lifefn/CMakeFiles/cs_lifefn.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cs_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/cs_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
