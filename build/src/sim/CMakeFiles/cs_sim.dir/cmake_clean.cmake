file(REMOVE_RECURSE
  "CMakeFiles/cs_sim.dir/checkpoint.cpp.o"
  "CMakeFiles/cs_sim.dir/checkpoint.cpp.o.d"
  "CMakeFiles/cs_sim.dir/episode.cpp.o"
  "CMakeFiles/cs_sim.dir/episode.cpp.o.d"
  "CMakeFiles/cs_sim.dir/farm.cpp.o"
  "CMakeFiles/cs_sim.dir/farm.cpp.o.d"
  "CMakeFiles/cs_sim.dir/network.cpp.o"
  "CMakeFiles/cs_sim.dir/network.cpp.o.d"
  "CMakeFiles/cs_sim.dir/policy.cpp.o"
  "CMakeFiles/cs_sim.dir/policy.cpp.o.d"
  "CMakeFiles/cs_sim.dir/reclaim.cpp.o"
  "CMakeFiles/cs_sim.dir/reclaim.cpp.o.d"
  "CMakeFiles/cs_sim.dir/task_bag.cpp.o"
  "CMakeFiles/cs_sim.dir/task_bag.cpp.o.d"
  "libcs_sim.a"
  "libcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
