# Empty dependencies file for cs_lifefn.
# This may be replaced when dependencies are built.
