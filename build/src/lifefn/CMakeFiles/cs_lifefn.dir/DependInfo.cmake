
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lifefn/factory.cpp" "src/lifefn/CMakeFiles/cs_lifefn.dir/factory.cpp.o" "gcc" "src/lifefn/CMakeFiles/cs_lifefn.dir/factory.cpp.o.d"
  "/root/repo/src/lifefn/families.cpp" "src/lifefn/CMakeFiles/cs_lifefn.dir/families.cpp.o" "gcc" "src/lifefn/CMakeFiles/cs_lifefn.dir/families.cpp.o.d"
  "/root/repo/src/lifefn/life_function.cpp" "src/lifefn/CMakeFiles/cs_lifefn.dir/life_function.cpp.o" "gcc" "src/lifefn/CMakeFiles/cs_lifefn.dir/life_function.cpp.o.d"
  "/root/repo/src/lifefn/shape.cpp" "src/lifefn/CMakeFiles/cs_lifefn.dir/shape.cpp.o" "gcc" "src/lifefn/CMakeFiles/cs_lifefn.dir/shape.cpp.o.d"
  "/root/repo/src/lifefn/transforms.cpp" "src/lifefn/CMakeFiles/cs_lifefn.dir/transforms.cpp.o" "gcc" "src/lifefn/CMakeFiles/cs_lifefn.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/cs_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
