file(REMOVE_RECURSE
  "libcs_lifefn.a"
)
