file(REMOVE_RECURSE
  "CMakeFiles/cs_lifefn.dir/factory.cpp.o"
  "CMakeFiles/cs_lifefn.dir/factory.cpp.o.d"
  "CMakeFiles/cs_lifefn.dir/families.cpp.o"
  "CMakeFiles/cs_lifefn.dir/families.cpp.o.d"
  "CMakeFiles/cs_lifefn.dir/life_function.cpp.o"
  "CMakeFiles/cs_lifefn.dir/life_function.cpp.o.d"
  "CMakeFiles/cs_lifefn.dir/shape.cpp.o"
  "CMakeFiles/cs_lifefn.dir/shape.cpp.o.d"
  "CMakeFiles/cs_lifefn.dir/transforms.cpp.o"
  "CMakeFiles/cs_lifefn.dir/transforms.cpp.o.d"
  "libcs_lifefn.a"
  "libcs_lifefn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_lifefn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
