file(REMOVE_RECURSE
  "CMakeFiles/cs_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/cs_parallel.dir/thread_pool.cpp.o.d"
  "libcs_parallel.a"
  "libcs_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
