file(REMOVE_RECURSE
  "libcs_parallel.a"
)
