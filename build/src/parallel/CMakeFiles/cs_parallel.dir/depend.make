# Empty dependencies file for cs_parallel.
# This may be replaced when dependencies are built.
