
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/csv.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/csv.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/csv.cpp.o.d"
  "/root/repo/src/numerics/derivative.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/derivative.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/derivative.cpp.o.d"
  "/root/repo/src/numerics/integrate.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/integrate.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/integrate.cpp.o.d"
  "/root/repo/src/numerics/interp.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/interp.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/interp.cpp.o.d"
  "/root/repo/src/numerics/linalg.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/linalg.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/linalg.cpp.o.d"
  "/root/repo/src/numerics/minimize.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/minimize.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/minimize.cpp.o.d"
  "/root/repo/src/numerics/roots.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/roots.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/roots.cpp.o.d"
  "/root/repo/src/numerics/stats.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/stats.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/stats.cpp.o.d"
  "/root/repo/src/numerics/tabulate.cpp" "src/numerics/CMakeFiles/cs_numerics.dir/tabulate.cpp.o" "gcc" "src/numerics/CMakeFiles/cs_numerics.dir/tabulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
