file(REMOVE_RECURSE
  "CMakeFiles/cs_numerics.dir/csv.cpp.o"
  "CMakeFiles/cs_numerics.dir/csv.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/derivative.cpp.o"
  "CMakeFiles/cs_numerics.dir/derivative.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/integrate.cpp.o"
  "CMakeFiles/cs_numerics.dir/integrate.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/interp.cpp.o"
  "CMakeFiles/cs_numerics.dir/interp.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/linalg.cpp.o"
  "CMakeFiles/cs_numerics.dir/linalg.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/minimize.cpp.o"
  "CMakeFiles/cs_numerics.dir/minimize.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/roots.cpp.o"
  "CMakeFiles/cs_numerics.dir/roots.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/stats.cpp.o"
  "CMakeFiles/cs_numerics.dir/stats.cpp.o.d"
  "CMakeFiles/cs_numerics.dir/tabulate.cpp.o"
  "CMakeFiles/cs_numerics.dir/tabulate.cpp.o.d"
  "libcs_numerics.a"
  "libcs_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
