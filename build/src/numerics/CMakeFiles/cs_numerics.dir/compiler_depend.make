# Empty compiler generated dependencies file for cs_numerics.
# This may be replaced when dependencies are built.
