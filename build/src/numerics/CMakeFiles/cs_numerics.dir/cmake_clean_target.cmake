file(REMOVE_RECURSE
  "libcs_numerics.a"
)
