file(REMOVE_RECURSE
  "libcs_baselines.a"
)
