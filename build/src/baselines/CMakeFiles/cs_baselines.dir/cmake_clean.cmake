file(REMOVE_RECURSE
  "CMakeFiles/cs_baselines.dir/bclr.cpp.o"
  "CMakeFiles/cs_baselines.dir/bclr.cpp.o.d"
  "CMakeFiles/cs_baselines.dir/oblivious.cpp.o"
  "CMakeFiles/cs_baselines.dir/oblivious.cpp.o.d"
  "libcs_baselines.a"
  "libcs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
