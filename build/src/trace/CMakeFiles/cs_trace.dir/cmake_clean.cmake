file(REMOVE_RECURSE
  "CMakeFiles/cs_trace.dir/bayes.cpp.o"
  "CMakeFiles/cs_trace.dir/bayes.cpp.o.d"
  "CMakeFiles/cs_trace.dir/fitters.cpp.o"
  "CMakeFiles/cs_trace.dir/fitters.cpp.o.d"
  "CMakeFiles/cs_trace.dir/generators.cpp.o"
  "CMakeFiles/cs_trace.dir/generators.cpp.o.d"
  "CMakeFiles/cs_trace.dir/owner_trace.cpp.o"
  "CMakeFiles/cs_trace.dir/owner_trace.cpp.o.d"
  "CMakeFiles/cs_trace.dir/survival_estimator.cpp.o"
  "CMakeFiles/cs_trace.dir/survival_estimator.cpp.o.d"
  "libcs_trace.a"
  "libcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
