
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bayes.cpp" "src/trace/CMakeFiles/cs_trace.dir/bayes.cpp.o" "gcc" "src/trace/CMakeFiles/cs_trace.dir/bayes.cpp.o.d"
  "/root/repo/src/trace/fitters.cpp" "src/trace/CMakeFiles/cs_trace.dir/fitters.cpp.o" "gcc" "src/trace/CMakeFiles/cs_trace.dir/fitters.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/cs_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/cs_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/owner_trace.cpp" "src/trace/CMakeFiles/cs_trace.dir/owner_trace.cpp.o" "gcc" "src/trace/CMakeFiles/cs_trace.dir/owner_trace.cpp.o.d"
  "/root/repo/src/trace/survival_estimator.cpp" "src/trace/CMakeFiles/cs_trace.dir/survival_estimator.cpp.o" "gcc" "src/trace/CMakeFiles/cs_trace.dir/survival_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lifefn/CMakeFiles/cs_lifefn.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cs_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
