# Empty compiler generated dependencies file for cs_trace.
# This may be replaced when dependencies are built.
