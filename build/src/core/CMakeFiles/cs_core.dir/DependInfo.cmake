
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/cs_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/admissibility.cpp" "src/core/CMakeFiles/cs_core.dir/admissibility.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/admissibility.cpp.o.d"
  "/root/repo/src/core/adversarial.cpp" "src/core/CMakeFiles/cs_core.dir/adversarial.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/adversarial.cpp.o.d"
  "/root/repo/src/core/dp_reference.cpp" "src/core/CMakeFiles/cs_core.dir/dp_reference.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/dp_reference.cpp.o.d"
  "/root/repo/src/core/expected_work.cpp" "src/core/CMakeFiles/cs_core.dir/expected_work.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/expected_work.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/cs_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/guideline.cpp" "src/core/CMakeFiles/cs_core.dir/guideline.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/guideline.cpp.o.d"
  "/root/repo/src/core/quantize.cpp" "src/core/CMakeFiles/cs_core.dir/quantize.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/quantize.cpp.o.d"
  "/root/repo/src/core/recurrence.cpp" "src/core/CMakeFiles/cs_core.dir/recurrence.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/recurrence.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/cs_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/cs_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/steady_state.cpp" "src/core/CMakeFiles/cs_core.dir/steady_state.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/steady_state.cpp.o.d"
  "/root/repo/src/core/structure.cpp" "src/core/CMakeFiles/cs_core.dir/structure.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/structure.cpp.o.d"
  "/root/repo/src/core/t0_bounds.cpp" "src/core/CMakeFiles/cs_core.dir/t0_bounds.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/t0_bounds.cpp.o.d"
  "/root/repo/src/core/worst_case.cpp" "src/core/CMakeFiles/cs_core.dir/worst_case.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/worst_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lifefn/CMakeFiles/cs_lifefn.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cs_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/cs_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
