file(REMOVE_RECURSE
  "CMakeFiles/cs_core.dir/adaptive.cpp.o"
  "CMakeFiles/cs_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/cs_core.dir/admissibility.cpp.o"
  "CMakeFiles/cs_core.dir/admissibility.cpp.o.d"
  "CMakeFiles/cs_core.dir/adversarial.cpp.o"
  "CMakeFiles/cs_core.dir/adversarial.cpp.o.d"
  "CMakeFiles/cs_core.dir/dp_reference.cpp.o"
  "CMakeFiles/cs_core.dir/dp_reference.cpp.o.d"
  "CMakeFiles/cs_core.dir/expected_work.cpp.o"
  "CMakeFiles/cs_core.dir/expected_work.cpp.o.d"
  "CMakeFiles/cs_core.dir/greedy.cpp.o"
  "CMakeFiles/cs_core.dir/greedy.cpp.o.d"
  "CMakeFiles/cs_core.dir/guideline.cpp.o"
  "CMakeFiles/cs_core.dir/guideline.cpp.o.d"
  "CMakeFiles/cs_core.dir/quantize.cpp.o"
  "CMakeFiles/cs_core.dir/quantize.cpp.o.d"
  "CMakeFiles/cs_core.dir/recurrence.cpp.o"
  "CMakeFiles/cs_core.dir/recurrence.cpp.o.d"
  "CMakeFiles/cs_core.dir/schedule.cpp.o"
  "CMakeFiles/cs_core.dir/schedule.cpp.o.d"
  "CMakeFiles/cs_core.dir/sensitivity.cpp.o"
  "CMakeFiles/cs_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/cs_core.dir/steady_state.cpp.o"
  "CMakeFiles/cs_core.dir/steady_state.cpp.o.d"
  "CMakeFiles/cs_core.dir/structure.cpp.o"
  "CMakeFiles/cs_core.dir/structure.cpp.o.d"
  "CMakeFiles/cs_core.dir/t0_bounds.cpp.o"
  "CMakeFiles/cs_core.dir/t0_bounds.cpp.o.d"
  "CMakeFiles/cs_core.dir/worst_case.cpp.o"
  "CMakeFiles/cs_core.dir/worst_case.cpp.o.d"
  "libcs_core.a"
  "libcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
