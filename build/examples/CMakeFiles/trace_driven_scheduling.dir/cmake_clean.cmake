file(REMOVE_RECURSE
  "CMakeFiles/trace_driven_scheduling.dir/trace_driven_scheduling.cpp.o"
  "CMakeFiles/trace_driven_scheduling.dir/trace_driven_scheduling.cpp.o.d"
  "trace_driven_scheduling"
  "trace_driven_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_driven_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
