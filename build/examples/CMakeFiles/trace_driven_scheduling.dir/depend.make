# Empty dependencies file for trace_driven_scheduling.
# This may be replaced when dependencies are built.
