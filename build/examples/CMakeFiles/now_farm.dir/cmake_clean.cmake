file(REMOVE_RECURSE
  "CMakeFiles/now_farm.dir/now_farm.cpp.o"
  "CMakeFiles/now_farm.dir/now_farm.cpp.o.d"
  "now_farm"
  "now_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
