# Empty compiler generated dependencies file for now_farm.
# This may be replaced when dependencies are built.
