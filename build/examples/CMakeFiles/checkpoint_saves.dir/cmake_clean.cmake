file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_saves.dir/checkpoint_saves.cpp.o"
  "CMakeFiles/checkpoint_saves.dir/checkpoint_saves.cpp.o.d"
  "checkpoint_saves"
  "checkpoint_saves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_saves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
