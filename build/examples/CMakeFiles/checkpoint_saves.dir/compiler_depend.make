# Empty compiler generated dependencies file for checkpoint_saves.
# This may be replaced when dependencies are built.
