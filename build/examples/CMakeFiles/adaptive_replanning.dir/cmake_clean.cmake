file(REMOVE_RECURSE
  "CMakeFiles/adaptive_replanning.dir/adaptive_replanning.cpp.o"
  "CMakeFiles/adaptive_replanning.dir/adaptive_replanning.cpp.o.d"
  "adaptive_replanning"
  "adaptive_replanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
