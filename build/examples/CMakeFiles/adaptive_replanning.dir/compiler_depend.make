# Empty compiler generated dependencies file for adaptive_replanning.
# This may be replaced when dependencies are built.
