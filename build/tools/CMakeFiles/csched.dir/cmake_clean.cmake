file(REMOVE_RECURSE
  "CMakeFiles/csched.dir/csched.cpp.o"
  "CMakeFiles/csched.dir/csched.cpp.o.d"
  "csched"
  "csched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
